// Tests for the plan-caching FFT layer: table-twiddle accuracy against a
// direct DFT (the regression guard for the old error-accumulating
// `w *= wlen` recurrence), the real-input pack-two-reals path, and the
// per-size plan registry.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"
#include "fft/plan.h"

namespace valmod::fft {
namespace {

/// Direct O(n^2) DFT with table-based twiddles (index j*k mod n), accurate
/// to ~sqrt(n) rounding: the ground truth for transform accuracy.
std::vector<std::complex<double>> DirectDft(
    const std::vector<std::complex<double>>& input) {
  const std::size_t n = input.size();
  std::vector<std::complex<double>> roots(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(n);
    roots[j] = {std::cos(angle), std::sin(angle)};
  }
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      acc += input[t] * roots[(k * t) % n];
    }
    out[k] = acc;
  }
  return out;
}

class PlanDftAccuracyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanDftAccuracyTest, TransformMatchesDirectDft) {
  const std::size_t n = GetParam();
  Rng rng(n + 5);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  const std::vector<std::complex<double>> expected = DirectDft(data);

  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  // Transform values are O(sqrt(n)); 1e-8 leaves two orders of margin over
  // the direct DFT's own rounding at 2^14 while catching any twiddle drift
  // (the old recurrence drifted well past this at large sizes).
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-8) << "n=" << n
                                                          << " k=" << k;
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-8) << "n=" << n
                                                          << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SizesUpTo2p14, PlanDftAccuracyTest,
                         ::testing::Values(2, 8, 64, 512, 4096, 16384));

class RealPathTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealPathTest, RealForwardMatchesComplexTransform) {
  const std::size_t n = GetParam();
  Rng rng(n + 13);
  std::vector<double> input(n);
  for (auto& x : input) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> spectrum(plan->half_spectrum_size());
  plan->RealForward(input, spectrum);

  std::vector<std::complex<double>> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = input[i];
  plan->Forward(reference);

  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(spectrum[k].real(), reference[k].real(), 1e-9)
        << "n=" << n << " k=" << k;
    EXPECT_NEAR(spectrum[k].imag(), reference[k].imag(), 1e-9)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RealPathTest, RealRoundTripReproducesInput) {
  const std::size_t n = GetParam();
  Rng rng(n + 29);
  // Input shorter than the plan exercises the implicit zero padding.
  const std::size_t input_len = n - n / 4;
  std::vector<double> input(input_len);
  for (auto& x : input) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> spectrum(plan->half_spectrum_size());
  plan->RealForward(input, spectrum);
  std::vector<double> output(n);
  plan->RealInverse(spectrum, output);

  for (std::size_t i = 0; i < n; ++i) {
    const double expected = i < input_len ? input[i] : 0.0;
    EXPECT_NEAR(output[i], expected, 1e-10) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealPathTest,
                         ::testing::Values(2, 4, 8, 32, 256, 1024, 8192));

class PairPathTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PairPathTest, PairRoundTripReproducesBothInputs) {
  const std::size_t n = GetParam();
  Rng rng(n + 37);
  // Different lengths exercise the per-lane zero padding.
  std::vector<double> a(n - n / 4), b(n / 2 + 1);
  for (auto& x : a) x = rng.Gaussian();
  for (auto& x : b) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> spectrum(n);
  plan->RealForwardPair(a, b, spectrum);
  std::vector<double> out_a(n), out_b(n);
  plan->RealInversePair(spectrum, out_a, out_b);

  for (std::size_t i = 0; i < n; ++i) {
    const double ea = i < a.size() ? a[i] : 0.0;
    const double eb = i < b.size() ? b[i] : 0.0;
    EXPECT_NEAR(out_a[i], ea, 1e-10) << "n=" << n << " i=" << i;
    EXPECT_NEAR(out_b[i], eb, 1e-10) << "n=" << n << " i=" << i;
  }
}

TEST_P(PairPathTest, PairConvolutionMatchesSingleConvolutions) {
  // The full pair pipeline — pack two queries, one forward, elementwise
  // product with a shared real signal's spectrum, one inverse — must agree
  // with two independent fft::Convolve calls. Agreement is to ~1e-9
  // relative, NOT bit-for-bit: the single-query path transforms each real
  // signal through a half-size complex FFT plus even/odd recombination
  // (and a DIT schedule), while the pair path runs one full-size
  // DIF-ordered transform with the two signals sharing lanes. Same
  // mathematics, different floating-point evaluation order, so the
  // roundings differ in the last bits.
  const std::size_t n = GetParam();
  Rng rng(n + 53);
  const std::size_t signal_len = n / 2;  // conv of two n/2 signals fits in n
  std::vector<double> shared(signal_len), qa(signal_len / 2 + 1),
      qb(signal_len / 3 + 1);
  for (auto& x : shared) x = rng.Gaussian();
  for (auto& x : qa) x = rng.Gaussian();
  for (auto& x : qb) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> shared_spectrum(n);
  plan->RealForwardPair(shared, {}, shared_spectrum);
  std::vector<std::complex<double>> pair(n);
  plan->RealForwardPair(qa, qb, pair);
  plan->MultiplyPairByRealSpectrum(shared_spectrum, pair);
  std::vector<double> conv_a(n), conv_b(n);
  plan->RealInversePair(pair, conv_a, conv_b);

  auto ref_a = Convolve(shared, qa);
  auto ref_b = Convolve(shared, qb);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  for (std::size_t i = 0; i < ref_a->size(); ++i) {
    EXPECT_NEAR(conv_a[i], (*ref_a)[i], 1e-9 * (1.0 + std::abs((*ref_a)[i])))
        << "n=" << n << " i=" << i;
  }
  for (std::size_t i = 0; i < ref_b->size(); ++i) {
    EXPECT_NEAR(conv_b[i], (*ref_b)[i], 1e-9 * (1.0 + std::abs((*ref_b)[i])))
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PairPathTest,
                         ::testing::Values(2, 4, 8, 32, 256, 1024, 8192));

TEST(PlanRegistryTest, CachesOnePlanPerSize) {
  const auto a = GetPlan(2048);
  const auto b = GetPlan(2048);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), 2048u);
  EXPECT_NE(a.get(), GetPlan(4096).get());
}

TEST(PlanRegistryTest, HandleOutlivesRegistryLookups) {
  const auto plan = GetPlan(16);
  std::vector<std::complex<double>> data(16, {1.0, 0.0});
  plan->Forward(data);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
}

TEST(PlanRegistryTest, BoundedWithLruEviction) {
  // Exercising eviction at the production capacity would need plans of
  // astronomical sizes (one distinct power of two per slot), so shrink the
  // cap, observe, restore.
  const std::size_t saved = SetPlanRegistryCapacityForTesting(4);

  // Flush whatever earlier tests cached: touching four known sizes leaves
  // the registry holding exactly those four, regardless of prior state.
  (void)GetPlan(1024);
  (void)GetPlan(512);
  (void)GetPlan(256);
  (void)GetPlan(128);

  // Building 16 recursively registers its half-plan chain; together with
  // the explicit GetPlan(2) the LRU is now exactly 16, 8, 4, 2.
  const auto plan2 = GetPlan(2);
  const auto plan16 = GetPlan(16);
  EXPECT_EQ(PlanRegistrySizeForTesting(), 4u);

  // A fifth size evicts the least recently used entry (2). Its ctor hits
  // the cached 16, so only one new entry is inserted.
  const auto plan32 = GetPlan(32);
  EXPECT_LE(PlanRegistrySizeForTesting(), 4u);

  // The evicted size is rebuilt on demand as a distinct object; the old
  // handle keeps working independently of the registry.
  const auto plan2_again = GetPlan(2);
  EXPECT_NE(plan2.get(), plan2_again.get());
  EXPECT_EQ(plan2->size(), 2u);
  EXPECT_EQ(plan2_again->size(), 2u);

  // Re-requesting a retained size is still a cache hit.
  EXPECT_EQ(plan32.get(), GetPlan(32).get());

  SetPlanRegistryCapacityForTesting(saved);
}

TEST(PlanRegistryTest, EvictedParentKeepsChildChainAlive) {
  const std::size_t saved = SetPlanRegistryCapacityForTesting(2);
  const auto plan64 = GetPlan(64);  // chain {2..64} mostly evicted already
  // Flush the registry completely.
  (void)GetPlan(128);
  (void)GetPlan(256);
  // The held handle's real-input path needs its half-size child plans;
  // they must survive via the parent's shared_ptr even though the registry
  // dropped every reference.
  std::vector<double> input(64, 1.0);
  std::vector<std::complex<double>> spectrum(plan64->half_spectrum_size());
  plan64->RealForward(input, spectrum);
  EXPECT_NEAR(spectrum[0].real(), 64.0, 1e-12);
  EXPECT_NEAR(spectrum[1].real(), 0.0, 1e-12);
  SetPlanRegistryCapacityForTesting(saved);
}

}  // namespace
}  // namespace valmod::fft
