// Tests for the plan-caching FFT layer: table-twiddle accuracy against a
// direct DFT (the regression guard for the old error-accumulating
// `w *= wlen` recurrence), the real-input pack-two-reals path, and the
// per-size plan registry.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"
#include "fft/plan.h"

namespace valmod::fft {
namespace {

/// Direct O(n^2) DFT with table-based twiddles (index j*k mod n), accurate
/// to ~sqrt(n) rounding: the ground truth for transform accuracy.
std::vector<std::complex<double>> DirectDft(
    const std::vector<std::complex<double>>& input) {
  const std::size_t n = input.size();
  std::vector<std::complex<double>> roots(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(n);
    roots[j] = {std::cos(angle), std::sin(angle)};
  }
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      acc += input[t] * roots[(k * t) % n];
    }
    out[k] = acc;
  }
  return out;
}

class PlanDftAccuracyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanDftAccuracyTest, TransformMatchesDirectDft) {
  const std::size_t n = GetParam();
  Rng rng(n + 5);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  const std::vector<std::complex<double>> expected = DirectDft(data);

  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  // Transform values are O(sqrt(n)); 1e-8 leaves two orders of margin over
  // the direct DFT's own rounding at 2^14 while catching any twiddle drift
  // (the old recurrence drifted well past this at large sizes).
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-8) << "n=" << n
                                                          << " k=" << k;
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-8) << "n=" << n
                                                          << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SizesUpTo2p14, PlanDftAccuracyTest,
                         ::testing::Values(2, 8, 64, 512, 4096, 16384));

class RealPathTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealPathTest, RealForwardMatchesComplexTransform) {
  const std::size_t n = GetParam();
  Rng rng(n + 13);
  std::vector<double> input(n);
  for (auto& x : input) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> spectrum(plan->half_spectrum_size());
  plan->RealForward(input, spectrum);

  std::vector<std::complex<double>> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = input[i];
  plan->Forward(reference);

  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(spectrum[k].real(), reference[k].real(), 1e-9)
        << "n=" << n << " k=" << k;
    EXPECT_NEAR(spectrum[k].imag(), reference[k].imag(), 1e-9)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RealPathTest, RealRoundTripReproducesInput) {
  const std::size_t n = GetParam();
  Rng rng(n + 29);
  // Input shorter than the plan exercises the implicit zero padding.
  const std::size_t input_len = n - n / 4;
  std::vector<double> input(input_len);
  for (auto& x : input) x = rng.Gaussian();

  const auto plan = GetPlan(n);
  std::vector<std::complex<double>> spectrum(plan->half_spectrum_size());
  plan->RealForward(input, spectrum);
  std::vector<double> output(n);
  plan->RealInverse(spectrum, output);

  for (std::size_t i = 0; i < n; ++i) {
    const double expected = i < input_len ? input[i] : 0.0;
    EXPECT_NEAR(output[i], expected, 1e-10) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealPathTest,
                         ::testing::Values(2, 4, 8, 32, 256, 1024, 8192));

TEST(PlanRegistryTest, CachesOnePlanPerSize) {
  const auto a = GetPlan(2048);
  const auto b = GetPlan(2048);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), 2048u);
  EXPECT_NE(a.get(), GetPlan(4096).get());
}

TEST(PlanRegistryTest, HandleOutlivesRegistryLookups) {
  const auto plan = GetPlan(16);
  std::vector<std::complex<double>> data(16, {1.0, 0.0});
  plan->Forward(data);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
}

}  // namespace
}  // namespace valmod::fft
