// The calibrated backend-aware cost model (mass/backend.h): the chooser
// must pick the backend that actually measures cheapest, the frozen v1
// policy must stay exactly the historical weight-18 boundary, and runtime
// calibration may move *choices* but never the numerics a given backend
// produces.

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "fft/fft.h"
#include "mass/backend.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/generators.h"

namespace valmod::mass {
namespace {

/// Restores the deterministic static fit after tests that install a
/// calibrated model, so test order never leaks a machine-dependent model
/// into the other suites of this binary.
class BackendCostTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBackendCostModel(BackendCostModel{}); }
};

struct GridCase {
  std::size_t series_n;
  std::size_t length;
  bool batched;
  ConvolutionBackend expected;
};

// Expected winners are the *measured* cheapest backends from the
// boundary_sweep rows of BENCH_engine.json (bench_mass_engine, batched
// single-threaded per-row timings; see the sweep summary in README /
// ROADMAP): overlap-save wins the whole short-length grid the v1 boundary
// used to keep on direct dots, direct survives only tiny problems, and the
// full-size FFT family keeps queries whose overlap-save chunk degenerates
// to the full transform.
TEST_F(BackendCostTest, ChoiceMatchesMeasuredWinnerOnBenchGrid) {
  const GridCase cases[] = {
      // The retuned boundary region (v1 chose direct everywhere here;
      // measured overlap-save speedups 1.15x-4.5x, see boundary_sweep).
      {std::size_t{1} << 12, 64, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 12, 128, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 12, 256, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 12, 512, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 13, 64, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 13, 128, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 13, 256, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 13, 512, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 14, 64, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 14, 128, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 14, 256, true, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 14, 512, true, ConvolutionBackend::kOverlapSave},
      // Tiny problems stay direct (measured 7.6us vs 10.0us per row).
      {600, 16, true, ConvolutionBackend::kDirect},
      {600, 16, false, ConvolutionBackend::kDirect},
      // Query a sizable fraction of the series: the chunk degenerates to
      // the full transform, so the full-size FFT family keeps it.
      {2048, 1024, true, ConvolutionBackend::kFftPair},
      {2048, 1024, false, ConvolutionBackend::kFftSingle},
      // Long-series configurations from the PR 3 sweep stay overlap-save.
      {std::size_t{1} << 15, 1024, false, ConvolutionBackend::kOverlapSave},
      {std::size_t{1} << 17, 1024, true, ConvolutionBackend::kOverlapSave},
  };
  for (const GridCase& c : cases) {
    const std::size_t count = c.series_n - c.length + 1;
    EXPECT_EQ(ChooseConvolutionBackend(c.series_n, c.length, count,
                                       c.batched),
              c.expected)
        << "n=" << c.series_n << " length=" << c.length
        << " batched=" << c.batched;
  }
}

// The resolver must always land on a concrete backend, and only on family
// members that match the batching mode (pair flavors exist only in
// batches; overlap-save only when its chunk is genuinely smaller than the
// full transform).
TEST_F(BackendCostTest, ResolvesToConcreteBackendEverywhere) {
  for (std::size_t n : {2u, 64u, 600u, 4096u, 100000u}) {
    for (std::size_t length : {1u, 2u, 16u, 100u, 512u}) {
      if (length >= n) continue;
      const std::size_t count = n - length + 1;
      for (bool batched : {false, true}) {
        const ConvolutionBackend b =
            ChooseConvolutionBackend(n, length, count, batched);
        EXPECT_NE(b, ConvolutionBackend::kAuto);
        EXPECT_NE(b, ConvolutionBackend::kAutoV1);
        if (!batched) EXPECT_NE(b, ConvolutionBackend::kFftPair);
        if (batched) EXPECT_NE(b, ConvolutionBackend::kFftSingle);
        if (b == ConvolutionBackend::kOverlapSave) {
          EXPECT_LT(fft::OverlapSaveFftSize(length),
                    fft::NextPowerOfTwo(n + length - 1))
              << "n=" << n << " length=" << length;
        }
      }
    }
  }
}

// The frozen v1 policy must remain the historical composition of the
// weight-18 PreferFftSlidingDots boundary and the chunk-vs-full split —
// that equivalence is what makes results_version = 1 bit-compatible with
// PR 3 output (proven end-to-end by valmod_golden_test).
TEST_F(BackendCostTest, V1PolicyIsTheLegacyBoundary) {
  for (std::size_t n : {100u, 600u, 2048u, 8192u, 65536u}) {
    for (std::size_t length : {4u, 16u, 64u, 128u, 512u, 1024u}) {
      if (length >= n) continue;
      const std::size_t count = n - length + 1;
      const ConvolutionBackend v1 =
          ChooseConvolutionBackendV1(n, length, count);
      if (!PreferFftSlidingDots(n, length, count)) {
        EXPECT_EQ(v1, ConvolutionBackend::kDirect);
      } else if (fft::OverlapSaveFftSize(length) >=
                 fft::NextPowerOfTwo(n + length - 1)) {
        EXPECT_EQ(v1, ConvolutionBackend::kFftSingle);
      } else {
        EXPECT_EQ(v1, ConvolutionBackend::kOverlapSave);
      }
    }
  }
}

// The retune in one assertion: the exact configuration the ROADMAP named
// (2^13 points, length 128; overlap-save measured 1.5x+ over direct) moves
// from direct under v1 to overlap-save under v2.
TEST_F(BackendCostTest, RetiredWeight18BoundaryConfiguration) {
  const std::size_t n = std::size_t{1} << 13;
  const std::size_t length = 128;
  const std::size_t count = n - length + 1;
  EXPECT_EQ(ChooseConvolutionBackendV1(n, length, count),
            ConvolutionBackend::kDirect);
  EXPECT_EQ(ChooseConvolutionBackend(n, length, count, /*batched=*/true),
            ConvolutionBackend::kOverlapSave);
}

// Cost functions: sanity of the shapes the chooser compares. Direct scales
// with count * length; the overlap-save pipeline is cheaper per row inside
// a pair-packed batch; the degenerate-chunk case is the FFT family's.
TEST_F(BackendCostTest, CostFunctionShapes) {
  const BackendCostModel model;  // static fit
  EXPECT_DOUBLE_EQ(DirectSlidingDotsCost(model, 128, 1000),
                   model.direct * 128.0 * 1000.0);
  EXPECT_LT(OverlapSaveSlidingDotsCost(model, 128, 8065, /*pair=*/true),
            OverlapSaveSlidingDotsCost(model, 128, 8065, /*pair=*/false));
  EXPECT_LT(FftSlidingDotsCost(model, 8192, 128, /*pair=*/true),
            FftSlidingDotsCost(model, 8192, 128, /*pair=*/false));
  // Longer series, same length: overlap-save cost grows ~linearly (more
  // chunks), full-FFT cost jumps with the padded transform size.
  EXPECT_LT(OverlapSaveSlidingDotsCost(model, 128, 8065, true),
            OverlapSaveSlidingDotsCost(model, 128, 16257, true));
  EXPECT_LT(FftSlidingDotsCost(model, 8192, 128, true),
            FftSlidingDotsCost(model, 16384, 128, true));
}

// Calibration must be choice-only: whatever weights the microbench fits,
// forcing a concrete backend before and after produces bit-identical rows.
// (kAuto *may* switch backends after calibration — that is its purpose.)
TEST_F(BackendCostTest, CalibrationNeverChangesBackendNumerics) {
  auto series = synth::ByName("ecg", 4096, 57);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  const std::size_t length = 128;
  const std::vector<std::size_t> rows = {0, 129, 700, 1501, 2000, 3000};

  const ConvolutionBackend backends[] = {
      ConvolutionBackend::kDirect, ConvolutionBackend::kFftSingle,
      ConvolutionBackend::kFftPair, ConvolutionBackend::kOverlapSave};
  std::vector<std::vector<RowProfile>> before;
  for (ConvolutionBackend b : backends) {
    auto r = engine.ComputeRowProfiles(rows, length, 1, b);
    ASSERT_TRUE(r.ok());
    before.push_back(std::move(*r));
  }

  const BackendCostModel fitted = CalibrateBackendCostModel();
  // The fit must be sane: positive weights, with the butterfly families
  // costlier per unit than the dense direct FMA loop.
  EXPECT_GT(fitted.fft_single, 0.0);
  EXPECT_GT(fitted.fft_pair, 0.0);
  EXPECT_GT(fitted.overlap_save, 0.0);
  EXPECT_GE(fitted.overlap_save_chunk, 0.0);
  // Calibrate installs itself as the active model.
  EXPECT_EQ(ActiveBackendCostModel().fft_single, fitted.fft_single);

  for (std::size_t bi = 0; bi < std::size(backends); ++bi) {
    auto after = engine.ComputeRowProfiles(rows, length, 1, backends[bi]);
    ASSERT_TRUE(after.ok());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = 0; j < (*after)[i].dots.size(); ++j) {
        ASSERT_EQ((*after)[i].dots[j], before[bi][i].dots[j])
            << ConvolutionBackendName(backends[bi]) << " row " << rows[i]
            << " j=" << j;
        ASSERT_EQ((*after)[i].distances[j], before[bi][i].distances[j])
            << ConvolutionBackendName(backends[bi]) << " row " << rows[i]
            << " j=" << j;
      }
    }
  }
}

// Installing a custom model steers kAuto deterministically: a model that
// prices transforms at (effectively) infinity forces direct everywhere, one
// that prices them at zero never picks direct for multi-row work.
TEST_F(BackendCostTest, InstalledModelSteersChoice) {
  BackendCostModel expensive_fft;
  expensive_fft.fft_single = 1e18;
  expensive_fft.fft_pair = 1e18;
  expensive_fft.overlap_save = 1e18;
  expensive_fft.overlap_save_chunk = 1e18;
  SetBackendCostModel(expensive_fft);
  EXPECT_EQ(ChooseConvolutionBackend(std::size_t{1} << 17, 1024,
                                     (std::size_t{1} << 17) - 1023, true),
            ConvolutionBackend::kDirect);

  BackendCostModel free_fft;
  free_fft.fft_single = 0.0;
  free_fft.fft_pair = 0.0;
  free_fft.overlap_save = 0.0;
  free_fft.overlap_save_chunk = 0.0;
  SetBackendCostModel(free_fft);
  EXPECT_NE(ChooseConvolutionBackend(600, 16, 585, true),
            ConvolutionBackend::kDirect);
}

}  // namespace
}  // namespace valmod::mass
