// Tests for matrix-profile serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "mp/profile_io.h"
#include "mp/stomp.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/valmod_profile_" + name;
}

TEST(ProfileIoTest, RoundTripsRealProfile) {
  auto series = synth::ByName("ecg", 400, 91);
  ASSERT_TRUE(series.ok());
  auto profile = ComputeStomp(*series, 30, {});
  ASSERT_TRUE(profile.ok());

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteProfileCsv(*profile, path).ok());
  auto loaded = ReadProfileCsv(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->subsequence_length, profile->subsequence_length);
  EXPECT_EQ(loaded->exclusion_zone, profile->exclusion_zone);
  ASSERT_EQ(loaded->size(), profile->size());
  for (std::size_t i = 0; i < profile->size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->distances[i], profile->distances[i]) << i;
    EXPECT_EQ(loaded->indices[i], profile->indices[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RoundTripsInfinities) {
  MatrixProfile profile;
  profile.subsequence_length = 10;
  profile.exclusion_zone = 5;
  profile.distances = {1.5, kInfinity, 2.5};
  profile.indices = {2, -1, 0};

  const std::string path = TempPath("inf.csv");
  ASSERT_TRUE(WriteProfileCsv(profile, path).ok());
  auto loaded = ReadProfileCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->distances[1], kInfinity);
  EXPECT_EQ(loaded->indices[1], -1);
  EXPECT_DOUBLE_EQ(loaded->distances[2], 2.5);
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.csv");
  std::ofstream(path) << "a,b\n1,2\n";
  EXPECT_EQ(ReadProfileCsv(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsMissingFile) {
  EXPECT_EQ(ReadProfileCsv(TempPath("missing.csv")).status().code(),
            StatusCode::kIoError);
}

TEST(ProfileIoTest, RejectsMalformedRows) {
  const std::string path = TempPath("malformed.csv");
  std::ofstream(path)
      << "# valmod matrix profile,length=5,exclusion=2\n"
      << "distance,index\n"
      << "not-a-number,3\n";
  EXPECT_FALSE(ReadProfileCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ProfileIoTest, RejectsEmptyBody) {
  const std::string path = TempPath("empty.csv");
  std::ofstream(path) << "# valmod matrix profile,length=5,exclusion=2\n"
                      << "distance,index\n";
  EXPECT_FALSE(ReadProfileCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace valmod::mp
