// Tests for the serving result cache: LRU bounds, stats, and the
// generation-based invalidation contract the server's keys rely on.

#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace valmod::service {
namespace {

std::shared_ptr<const std::string> Payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ResultCacheTest, HitAfterPut) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", Payload("v"));
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Put("a", Payload("1"));
  cache.Put("b", Payload("2"));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a; b is now LRU
  cache.Put("c", Payload("3"));        // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Put("a", Payload("1"));
  cache.Put("a", Payload("updated"));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "updated");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);  // refresh, not insert
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Put("a", Payload("1"));
  EXPECT_EQ(cache.Get("a"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled lookups are not counted
}

TEST(ResultCacheTest, EvictedValueSurvivesThroughSharedPtr) {
  ResultCache cache(1);
  cache.Put("a", Payload("1"));
  auto held = cache.Get("a");
  cache.Put("b", Payload("2"));  // evicts a
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);  // the reader's reference is unaffected
  EXPECT_EQ(*held, "1");
}

// The invalidation contract: keys embed the dataset generation and the
// cost-model generation, so bumping either *changes the key* — the old
// entry is simply never asked for again and ages out of the LRU.
TEST(ResultCacheTest, GenerationChangesMissNaturally) {
  ResultCache cache(8);
  const std::string old_key = "ds|g1|motifs|lmin=64,lmax=80,k=1|rv2|cm0";
  const std::string new_key = "ds|g2|motifs|lmin=64,lmax=80,k=1|rv2|cm0";
  cache.Put(old_key, Payload("stale"));
  EXPECT_EQ(cache.Get(new_key), nullptr);
  const std::string recal_key = "ds|g1|motifs|lmin=64,lmax=80,k=1|rv2|cm1";
  EXPECT_EQ(cache.Get(recal_key), nullptr);
}

// --- In-flight coalescing (the flight protocol) -------------------------

/// Builds a waiter whose callbacks record what happened into the given
/// slots (delivered payload, promotion count).
ResultCache::InFlightWaiter RecordingWaiter(std::string* delivered,
                                            int* promoted) {
  ResultCache::InFlightWaiter waiter;
  waiter.deliver = [delivered](std::shared_ptr<const std::string> value) {
    *delivered = value == nullptr ? "<null>" : *value;
  };
  waiter.promote = [promoted] { ++*promoted; };
  return waiter;
}

TEST(ResultCacheFlightTest, FirstMissLeadsSecondJoinsCompleteFansOut) {
  ResultCache cache(4);
  std::string delivered;
  int promoted = 0;

  auto first = cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted));
  EXPECT_EQ(first.state, ResultCache::FlightState::kLeader);
  auto second = cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted));
  EXPECT_EQ(second.state, ResultCache::FlightState::kJoined);
  EXPECT_EQ(cache.stats().inflight, 1u);
  EXPECT_EQ(cache.stats().coalesced, 1u);

  auto waiters = cache.CompleteFlight("k", Payload("v"), /*cache_value=*/true);
  ASSERT_EQ(waiters.size(), 1u);
  waiters[0].deliver(Payload("v"));
  EXPECT_EQ(delivered, "v");
  EXPECT_EQ(promoted, 0);
  EXPECT_EQ(cache.stats().inflight, 0u);

  // The completed value was stored: the next lookup is a plain hit.
  auto third = cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted));
  EXPECT_EQ(third.state, ResultCache::FlightState::kHit);
  ASSERT_NE(third.value, nullptr);
  EXPECT_EQ(*third.value, "v");
}

TEST(ResultCacheFlightTest, CompleteWithoutCachingFansOutButStoresNothing) {
  ResultCache cache(4);
  std::string delivered;
  int promoted = 0;
  ASSERT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kLeader);
  ASSERT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kJoined);
  auto waiters =
      cache.CompleteFlight("k", Payload("v"), /*cache_value=*/false);
  EXPECT_EQ(waiters.size(), 1u);
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheFlightTest, FailFlightPromotesWaitersInArrivalOrder) {
  ResultCache cache(4);
  std::string delivered_a, delivered_b;
  int promoted_a = 0, promoted_b = 0;
  ASSERT_EQ(
      cache.GetOrJoin("k", RecordingWaiter(&delivered_a, &promoted_a)).state,
      ResultCache::FlightState::kLeader);
  // Leader's own waiter was discarded; park two more.
  ASSERT_EQ(
      cache.GetOrJoin("k", RecordingWaiter(&delivered_a, &promoted_a)).state,
      ResultCache::FlightState::kJoined);
  ASSERT_EQ(
      cache.GetOrJoin("k", RecordingWaiter(&delivered_b, &promoted_b)).state,
      ResultCache::FlightState::kJoined);

  // Leader fails: the FIRST waiter is promoted, the flight stays open.
  auto next = cache.FailFlight("k");
  ASSERT_TRUE(next.has_value());
  next->promote();
  EXPECT_EQ(promoted_a, 1);
  EXPECT_EQ(promoted_b, 0);
  EXPECT_EQ(cache.stats().failovers, 1u);
  EXPECT_EQ(cache.stats().inflight, 1u);

  // A new arrival still joins the open flight behind waiter b.
  std::string delivered_c;
  int promoted_c = 0;
  ASSERT_EQ(
      cache.GetOrJoin("k", RecordingWaiter(&delivered_c, &promoted_c)).state,
      ResultCache::FlightState::kJoined);

  // The promoted leader completes: both remaining waiters fan out.
  auto waiters = cache.CompleteFlight("k", Payload("v"), /*cache_value=*/true);
  EXPECT_EQ(waiters.size(), 2u);
  EXPECT_EQ(cache.stats().inflight, 0u);
}

TEST(ResultCacheFlightTest, FailFlightWithNoWaitersClosesTheFlight) {
  ResultCache cache(4);
  std::string delivered;
  int promoted = 0;
  ASSERT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kLeader);
  EXPECT_FALSE(cache.FailFlight("k").has_value());
  EXPECT_EQ(cache.stats().inflight, 0u);
  // The key is free again: the next miss opens a fresh flight.
  EXPECT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kLeader);
}

TEST(ResultCacheFlightTest, FlightsCoalesceEvenAtZeroCapacity) {
  ResultCache cache(0);  // caching disabled; coalescing must still work
  std::string delivered;
  int promoted = 0;
  ASSERT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kLeader);
  ASSERT_EQ(cache.GetOrJoin("k", RecordingWaiter(&delivered, &promoted)).state,
            ResultCache::FlightState::kJoined);
  auto waiters = cache.CompleteFlight("k", Payload("v"), /*cache_value=*/true);
  EXPECT_EQ(waiters.size(), 1u);
  // cache_value was true but capacity 0 stores nothing.
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheFlightTest, CompleteWithoutOpenFlightBehavesLikePut) {
  ResultCache cache(4);
  auto waiters = cache.CompleteFlight("k", Payload("v"), /*cache_value=*/true);
  EXPECT_TRUE(waiters.empty());
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  EXPECT_FALSE(cache.FailFlight("absent").has_value());
}

TEST(ResultCacheTest, ConcurrentGetPutIsSafe) {
  ResultCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 24);
        cache.Put(key, Payload(key));
        auto hit = cache.Get(key);
        if (hit != nullptr) EXPECT_EQ(*hit, key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.stats().entries, 16u);
}

}  // namespace
}  // namespace valmod::service
