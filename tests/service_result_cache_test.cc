// Tests for the serving result cache: LRU bounds, stats, and the
// generation-based invalidation contract the server's keys rely on.

#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace valmod::service {
namespace {

std::shared_ptr<const std::string> Payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ResultCacheTest, HitAfterPut) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", Payload("v"));
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Put("a", Payload("1"));
  cache.Put("b", Payload("2"));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a; b is now LRU
  cache.Put("c", Payload("3"));        // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Put("a", Payload("1"));
  cache.Put("a", Payload("updated"));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "updated");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);  // refresh, not insert
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Put("a", Payload("1"));
  EXPECT_EQ(cache.Get("a"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled lookups are not counted
}

TEST(ResultCacheTest, EvictedValueSurvivesThroughSharedPtr) {
  ResultCache cache(1);
  cache.Put("a", Payload("1"));
  auto held = cache.Get("a");
  cache.Put("b", Payload("2"));  // evicts a
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);  // the reader's reference is unaffected
  EXPECT_EQ(*held, "1");
}

// The invalidation contract: keys embed the dataset generation and the
// cost-model generation, so bumping either *changes the key* — the old
// entry is simply never asked for again and ages out of the LRU.
TEST(ResultCacheTest, GenerationChangesMissNaturally) {
  ResultCache cache(8);
  const std::string old_key = "ds|g1|motifs|lmin=64,lmax=80,k=1|rv2|cm0";
  const std::string new_key = "ds|g2|motifs|lmin=64,lmax=80,k=1|rv2|cm0";
  cache.Put(old_key, Payload("stale"));
  EXPECT_EQ(cache.Get(new_key), nullptr);
  const std::string recal_key = "ds|g1|motifs|lmin=64,lmax=80,k=1|rv2|cm1";
  EXPECT_EQ(cache.Get(recal_key), nullptr);
}

TEST(ResultCacheTest, ConcurrentGetPutIsSafe) {
  ResultCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 24);
        cache.Put(key, Payload(key));
        auto hit = cache.Get(key);
        if (hit != nullptr) EXPECT_EQ(*hit, key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.stats().entries, 16u);
}

}  // namespace
}  // namespace valmod::service
