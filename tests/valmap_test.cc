// Tests for the VALMAP meta-data structure.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/valmap.h"
#include "mp/matrix_profile.h"
#include "mp/motif.h"
#include "series/znorm.h"

namespace valmod::core {
namespace {

mp::MatrixProfile MakeProfile(std::vector<double> distances,
                              std::vector<int64_t> indices,
                              std::size_t length) {
  mp::MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = length / 2;
  profile.distances = std::move(distances);
  profile.indices = std::move(indices);
  return profile;
}

mp::MotifPair MakePair(int64_t a, int64_t b, std::size_t length, double d) {
  mp::MotifPair pair;
  pair.offset_a = a;
  pair.offset_b = b;
  pair.length = length;
  pair.distance = d;
  pair.normalized_distance = series::LengthNormalizedDistance(d, length);
  return pair;
}

TEST(ValmapTest, FromProfileNormalizesDistances) {
  auto valmap = Valmap::FromProfile(
      MakeProfile({4.0, 2.0, 8.0}, {2, 0, 1}, 16));
  ASSERT_TRUE(valmap.ok());
  EXPECT_EQ(valmap->size(), 3u);
  EXPECT_EQ(valmap->min_length(), 16u);
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[0], 1.0);   // 4/sqrt(16)
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[1], 0.5);
  EXPECT_EQ(valmap->index_profile()[0], 2);
  EXPECT_EQ(valmap->length_profile()[0], 16u);  // flat at min length
}

TEST(ValmapTest, FromEmptyProfileRejected) {
  mp::MatrixProfile empty;
  EXPECT_FALSE(Valmap::FromProfile(empty).ok());
}

TEST(ValmapTest, ApplyImprovesBothSides) {
  auto valmap =
      Valmap::FromProfile(MakeProfile({4.0, 4.0, 4.0}, {1, 0, 0}, 16));
  ASSERT_TRUE(valmap.ok());
  // Pair (0, 2) at length 64 with raw distance 4: normalized 0.5 < 1.0.
  valmap->Apply(MakePair(0, 2, 64, 4.0));
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[0], 0.5);
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[2], 0.5);
  EXPECT_EQ(valmap->index_profile()[0], 2);
  EXPECT_EQ(valmap->index_profile()[2], 0);
  EXPECT_EQ(valmap->length_profile()[0], 64u);
  // Untouched offset keeps its init state.
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[1], 1.0);
  EXPECT_EQ(valmap->length_profile()[1], 16u);
}

TEST(ValmapTest, ApplyIgnoresWorsePairs) {
  auto valmap =
      Valmap::FromProfile(MakeProfile({1.0, 1.0, 1.0}, {1, 0, 0}, 16));
  ASSERT_TRUE(valmap.ok());
  valmap->Apply(MakePair(0, 2, 64, 40.0));  // normalized 5.0 > 0.25
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[0], 0.25);
  EXPECT_EQ(valmap->length_profile()[0], 16u);
  EXPECT_TRUE(valmap->updates().empty());
}

TEST(ValmapTest, UpdatesRecordedAndStamped) {
  auto valmap =
      Valmap::FromProfile(MakeProfile({4.0, 4.0, 4.0, 4.0}, {1, 0, 3, 2},
                                      16));
  ASSERT_TRUE(valmap.ok());
  valmap->Checkpoint(16);

  valmap->Apply(MakePair(0, 2, 17, 3.0));
  valmap->Checkpoint(17);
  valmap->Apply(MakePair(1, 3, 18, 2.0));
  valmap->Checkpoint(18);

  ASSERT_EQ(valmap->updates().size(), 4u);  // two sides per pair
  EXPECT_EQ(valmap->UpdatesForLength(17).size(), 2u);
  EXPECT_EQ(valmap->UpdatesForLength(18).size(), 2u);
  EXPECT_TRUE(valmap->UpdatesForLength(16).empty());
  EXPECT_EQ(valmap->UpdatesForLength(17)[0].offset, 0u);
  EXPECT_EQ(valmap->UpdatesForLength(17)[0].match, 2);
}

TEST(ValmapTest, RepeatedImprovementKeepsLatest) {
  auto valmap = Valmap::FromProfile(MakeProfile({8.0, 8.0}, {1, 0}, 16));
  ASSERT_TRUE(valmap.ok());
  valmap->Apply(MakePair(0, 1, 20, 6.0));
  valmap->Apply(MakePair(0, 1, 30, 4.0));
  EXPECT_EQ(valmap->length_profile()[0], 30u);
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[0],
                   series::LengthNormalizedDistance(4.0, 30));
}

TEST(ValmapTest, BestOffsetTracksMinimum) {
  auto valmap =
      Valmap::FromProfile(MakeProfile({4.0, 2.0, 8.0}, {2, 0, 1}, 16));
  ASSERT_TRUE(valmap.ok());
  auto best = valmap->BestOffset();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 1u);

  valmap->Apply(MakePair(2, 0, 100, 1.0));  // normalized 0.1
  best = valmap->BestOffset();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 0u);  // offsets 0 and 2 both at 0.1; lower offset wins
}

TEST(ValmapTest, EmptyValmapBestOffsetFails) {
  Valmap valmap;
  EXPECT_EQ(valmap.BestOffset().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ValmapTest, ApplyOutOfRangeOffsetIgnored) {
  auto valmap = Valmap::FromProfile(MakeProfile({4.0, 4.0}, {1, 0}, 16));
  ASSERT_TRUE(valmap.ok());
  // Offset 5 does not exist in a 2-entry VALMAP; only side 0 updates.
  valmap->Apply(MakePair(0, 5, 32, 2.0));
  EXPECT_EQ(valmap->updates().size(), 1u);
  EXPECT_DOUBLE_EQ(valmap->normalized_profile()[0],
                   series::LengthNormalizedDistance(2.0, 32));
}

}  // namespace
}  // namespace valmod::core
