// Tests for the streaming (append-only) matrix profile.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mp/stomp.h"
#include "mp/streaming.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

struct StreamCase {
  std::string generator;
  std::size_t n;
  std::size_t length;
};

class StreamingTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamingTest, FinalProfileMatchesBatchStomp) {
  const StreamCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 97);
  ASSERT_TRUE(series.ok());

  auto stream = StreamingProfile::Create(c.length);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->AppendAll(series->values()).ok());

  auto batch = ComputeStomp(*series, c.length, {});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(stream->ProfileSnapshot().size(), batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_NEAR(stream->ProfileSnapshot().distances[i], batch->distances[i], 2e-5)
        << "row " << i;
  }
}

TEST_P(StreamingTest, IntermediateSnapshotsMatchPrefixes) {
  const StreamCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 101);
  ASSERT_TRUE(series.ok());

  auto stream = StreamingProfile::Create(c.length);
  ASSERT_TRUE(stream.ok());
  const auto values = series->values();

  const std::size_t checkpoints[] = {c.n / 2, 3 * c.n / 4, c.n};
  std::size_t next = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(stream->Append(values[i]).ok());
    if (next < 3 && i + 1 == checkpoints[next]) {
      ++next;
      auto prefix = series->Prefix(i + 1);
      ASSERT_TRUE(prefix.ok());
      auto batch = ComputeStomp(*prefix, c.length, {});
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(stream->ProfileSnapshot().size(), batch->size());
      for (std::size_t r = 0; r < batch->size(); ++r) {
        EXPECT_NEAR(stream->ProfileSnapshot().distances[r], batch->distances[r],
                    2e-5)
            << "checkpoint " << i + 1 << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, StreamingTest,
    ::testing::Values(StreamCase{"random_walk", 300, 16},
                      StreamCase{"sine", 400, 32},
                      StreamCase{"ecg", 350, 25}));

TEST(StreamingProfileTest, WarmUpYieldsNoSubsequences) {
  auto stream = StreamingProfile::Create(10);
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(stream->Append(static_cast<double>(i)).ok());
    EXPECT_EQ(stream->NumSubsequences(), 0u);
    EXPECT_TRUE(stream->ProfileSnapshot().distances.empty());
  }
  ASSERT_TRUE(stream->Append(9.0).ok());
  EXPECT_EQ(stream->NumSubsequences(), 1u);
  EXPECT_EQ(stream->ProfileSnapshot().distances.size(), 1u);
  EXPECT_EQ(stream->ProfileSnapshot().distances[0], kInfinity);
}

TEST(StreamingProfileTest, LargeLevelOffsetHandledByAnchor) {
  // The anchor shift keeps prefix sums conditioned for large levels.
  auto base = synth::ByName("sine", 300, 103);
  ASSERT_TRUE(base.ok());
  std::vector<double> shifted(base->values().begin(), base->values().end());
  for (double& v : shifted) v += 1e8;

  auto stream = StreamingProfile::Create(24);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->AppendAll(shifted).ok());

  auto series = series::DataSeries::Create(std::move(shifted));
  ASSERT_TRUE(series.ok());
  auto batch = ComputeStomp(*series, 24, {});
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_NEAR(stream->ProfileSnapshot().distances[i], batch->distances[i], 1e-4)
        << i;
  }
}

TEST(StreamingProfileTest, RejectsBadInput) {
  EXPECT_FALSE(StreamingProfile::Create(1).ok());
  EXPECT_FALSE(StreamingProfile::Create(10, -0.5).ok());
  auto stream = StreamingProfile::Create(5);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->Append(std::nan("")).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingProfileTest, ConstantStreamAllZeros) {
  auto stream = StreamingProfile::Create(8);
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(stream->Append(3.5).ok());
  const auto& profile = stream->ProfileSnapshot();
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile.indices[i] >= 0) {
      EXPECT_DOUBLE_EQ(profile.distances[i], 0.0) << i;
    }
  }
  // With 33 windows and exclusion 4, interior rows must have matches.
  EXPECT_GE(profile.indices[0], 0);
}

}  // namespace
}  // namespace valmod::mp
