// Parity tests for the overlap-save convolution against the full-size
// Convolve path and against the brute-force definition. Overlap-save
// changes the evaluation order of every output (chunk-size transforms
// instead of one full-size transform), so parity here is relative-1e-9,
// not bit-identity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"

namespace valmod::fft {
namespace {

std::vector<double> RandomSignal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = rng.Gaussian();
  return out;
}

std::vector<double> BruteConvolve(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

void ExpectConvolutionParity(const std::vector<double>& got,
                             const std::vector<double>& want,
                             const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k], want[k], 1e-9 * (1.0 + std::abs(want[k])))
        << label << " k=" << k;
  }
}

TEST(OverlapSaveFftSizeTest, FourTimesFilterWithFloor) {
  EXPECT_EQ(OverlapSaveFftSize(1), 64u);
  EXPECT_EQ(OverlapSaveFftSize(16), 64u);
  EXPECT_EQ(OverlapSaveFftSize(17), 128u);
  EXPECT_EQ(OverlapSaveFftSize(1024), 4096u);
  // The alias-free half-chunk property the engine relies on:
  // length - 1 <= chunk / 2 for every length.
  for (std::size_t m : {std::size_t{1}, std::size_t{16}, std::size_t{17},
                        std::size_t{100}, std::size_t{4097}}) {
    EXPECT_LE(m - 1, OverlapSaveFftSize(m) / 2) << "m=" << m;
  }
}

TEST(OverlapSaveConvolveTest, MatchesConvolveAcrossShapes) {
  // Signal lengths around chunk multiples and filter lengths around the
  // chunk-size steps (the 4*m power-of-two jump at m = 16 -> 17) exercise
  // partial final chunks, single-chunk runs, and hop boundaries.
  const std::size_t signal_lengths[] = {1, 5, 48, 63, 64, 65, 127, 128,
                                        200, 1000};
  const std::size_t filter_lengths[] = {1, 2, 15, 16, 17, 31, 48, 64};
  std::uint64_t seed = 1;
  for (std::size_t n : signal_lengths) {
    for (std::size_t m : filter_lengths) {
      const std::vector<double> a = RandomSignal(n, seed++);
      const std::vector<double> b = RandomSignal(m, seed++);
      auto ols = OverlapSaveConvolve(a, b);
      ASSERT_TRUE(ols.ok()) << "n=" << n << " m=" << m;
      auto full = Convolve(a, b);
      ASSERT_TRUE(full.ok()) << "n=" << n << " m=" << m;
      ExpectConvolutionParity(*ols, *full, "vs Convolve");
    }
  }
}

TEST(OverlapSaveConvolveTest, MatchesBruteForce) {
  for (std::size_t n : {std::size_t{7}, std::size_t{64}, std::size_t{150}}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{7}, std::size_t{33}}) {
      const std::vector<double> a = RandomSignal(n, 1000 + n);
      const std::vector<double> b = RandomSignal(m, 2000 + m);
      auto ols = OverlapSaveConvolve(a, b);
      ASSERT_TRUE(ols.ok());
      ExpectConvolutionParity(*ols, BruteConvolve(a, b), "vs brute");
    }
  }
}

TEST(OverlapSaveConvolveTest, ConstantInputs) {
  // Constant signals make every aliasing or mis-alignment error visible as
  // a step in what must be a flat-topped trapezoid.
  const std::vector<double> a(130, 2.5);
  const std::vector<double> b(17, -1.0);
  auto ols = OverlapSaveConvolve(a, b);
  ASSERT_TRUE(ols.ok());
  ExpectConvolutionParity(*ols, BruteConvolve(a, b), "constant");
}

TEST(OverlapSaveConvolveTest, FilterLongerThanSignal) {
  const std::vector<double> a = RandomSignal(9, 77);
  const std::vector<double> b = RandomSignal(40, 78);
  auto ols = OverlapSaveConvolve(a, b);
  ASSERT_TRUE(ols.ok());
  ExpectConvolutionParity(*ols, BruteConvolve(a, b), "long filter");
}

TEST(OverlapSaveConvolveTest, RejectsEmptyInputs) {
  const std::vector<double> a = {1.0};
  EXPECT_FALSE(OverlapSaveConvolve(a, {}).ok());
  EXPECT_FALSE(OverlapSaveConvolve({}, a).ok());
}

}  // namespace
}  // namespace valmod::fft
