// Tests for top-k motif-pair extraction from matrix profiles.

#include <gtest/gtest.h>

#include <vector>

#include "mp/brute_force.h"
#include "mp/motif.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

MatrixProfile MakeProfile(std::vector<double> distances,
                          std::vector<int64_t> indices, std::size_t length,
                          std::size_t exclusion) {
  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = exclusion;
  profile.distances = std::move(distances);
  profile.indices = std::move(indices);
  return profile;
}

TEST(MotifExtractionTest, PicksSmallestPair) {
  // Rows 1 and 5 point at each other with the global minimum.
  MatrixProfile profile = MakeProfile({4.0, 1.0, 3.0, 5.0, 6.0, 1.0},
                                      {3, 5, 4, 0, 2, 1}, 10, 2);
  auto motifs = ExtractTopKMotifs(profile, 1);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 1u);
  EXPECT_EQ((*motifs)[0].offset_a, 1);
  EXPECT_EQ((*motifs)[0].offset_b, 5);
  EXPECT_DOUBLE_EQ((*motifs)[0].distance, 1.0);
  EXPECT_EQ((*motifs)[0].length, 10u);
}

TEST(MotifExtractionTest, DeduplicatesMirroredRows) {
  // Both rows of the same pair appear in the profile; only one pair results.
  MatrixProfile profile =
      MakeProfile({1.0, 9.0, 9.0, 9.0, 1.0}, {4, 3, 4, 1, 0}, 5, 1);
  auto motifs = ExtractTopKMotifs(profile, 3, MotifSelection::kAllRowMinima);
  ASSERT_TRUE(motifs.ok());
  ASSERT_GE(motifs->size(), 1u);
  EXPECT_EQ((*motifs)[0].offset_a, 0);
  EXPECT_EQ((*motifs)[0].offset_b, 4);
  for (std::size_t i = 1; i < motifs->size(); ++i) {
    EXPECT_FALSE((*motifs)[i].offset_a == 0 && (*motifs)[i].offset_b == 4);
  }
}

TEST(MotifExtractionTest, NonOverlappingMasksNeighbors) {
  // Second-best pair overlaps the best pair's members; with exclusion 3 it
  // must be skipped and the third-best chosen instead.
  MatrixProfile profile = MakeProfile(
      {1.0, 1.5, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 2.0, 9.0},
      {6, 7, 6, 7, 8, 9, 0, 1, 4, 5, 11, 10}, 6, 3);
  auto motifs = ExtractTopKMotifs(profile, 2, MotifSelection::kNonOverlapping);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 2u);
  EXPECT_EQ((*motifs)[0].offset_a, 0);
  EXPECT_EQ((*motifs)[0].offset_b, 6);
  // (1, 7) overlaps both 0 and 6 within exclusion 3 -> skipped.
  EXPECT_EQ((*motifs)[1].offset_a, 10);
  EXPECT_EQ((*motifs)[1].offset_b, 11);
}

TEST(MotifExtractionTest, AllRowMinimaKeepsOverlapping) {
  MatrixProfile profile = MakeProfile(
      {1.0, 1.5, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 2.0, 9.0},
      {6, 7, 6, 7, 8, 9, 0, 1, 4, 5, 11, 10}, 6, 3);
  auto motifs = ExtractTopKMotifs(profile, 2, MotifSelection::kAllRowMinima);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 2u);
  EXPECT_EQ((*motifs)[1].offset_a, 1);
  EXPECT_EQ((*motifs)[1].offset_b, 7);
}

TEST(MotifExtractionTest, SkipsInvalidRows) {
  MatrixProfile profile =
      MakeProfile({kInfinity, 2.0, kInfinity, 2.0}, {-1, 3, -1, 1}, 4, 1);
  auto motifs = ExtractTopKMotifs(profile, 5, MotifSelection::kAllRowMinima);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 1u);
  EXPECT_EQ((*motifs)[0].offset_a, 1);
}

TEST(MotifExtractionTest, ReturnsFewerWhenExhausted) {
  MatrixProfile profile = MakeProfile({1.0, 1.0}, {1, 0}, 3, 1);
  auto motifs = ExtractTopKMotifs(profile, 10);
  ASSERT_TRUE(motifs.ok());
  EXPECT_EQ(motifs->size(), 1u);
}

TEST(MotifExtractionTest, RejectsZeroK) {
  MatrixProfile profile = MakeProfile({1.0}, {0}, 2, 1);
  EXPECT_EQ(ExtractTopKMotifs(profile, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MotifExtractionTest, NormalizedDistancePopulated) {
  MatrixProfile profile = MakeProfile({2.0, 9.0, 2.0}, {2, 2, 0}, 4, 1);
  auto motifs = ExtractTopKMotifs(profile, 1);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 1u);
  EXPECT_DOUBLE_EQ((*motifs)[0].normalized_distance, 2.0 / 2.0);  // 2*sqrt(1/4)
}

TEST(MotifExtractionTest, DeterministicTieBreaking) {
  // Equal distances: the lower row index wins.
  MatrixProfile profile =
      MakeProfile({3.0, 3.0, 3.0, 3.0}, {2, 3, 0, 1}, 5, 1);
  auto motifs = ExtractTopKMotifs(profile, 1, MotifSelection::kAllRowMinima);
  ASSERT_TRUE(motifs.ok());
  EXPECT_EQ((*motifs)[0].offset_a, 0);
  EXPECT_EQ((*motifs)[0].offset_b, 2);
}

TEST(MotifExtractionTest, EndToEndOnPlantedMotif) {
  synth::PlantedMotifOptions options;
  options.length = 3000;
  options.seed = 77;
  options.motif_length = 80;
  options.occurrences = 2;
  options.occurrence_noise = 0.01;
  auto planted = synth::PlantedMotif(options);
  ASSERT_TRUE(planted.ok());

  auto profile = ComputeBruteForce(planted->series, 80, {});
  ASSERT_TRUE(profile.ok());
  auto motifs = ExtractTopKMotifs(*profile, 1);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 1u);
  // The found pair must land on the planted offsets (within a small shift).
  const auto near_any_plant = [&](int64_t offset) {
    for (std::size_t plant : planted->motif_offsets) {
      if (std::abs(offset - static_cast<int64_t>(plant)) <= 8) return true;
    }
    return false;
  };
  EXPECT_TRUE(near_any_plant((*motifs)[0].offset_a))
      << "a=" << (*motifs)[0].offset_a;
  EXPECT_TRUE(near_any_plant((*motifs)[0].offset_b))
      << "b=" << (*motifs)[0].offset_b;
}

TEST(MotifToStringTest, RendersFields) {
  MotifPair pair;
  pair.offset_a = 3;
  pair.offset_b = 9;
  pair.length = 20;
  pair.distance = 1.5;
  pair.normalized_distance = 0.3;
  const std::string text = ToString(pair);
  EXPECT_NE(text.find("a=3"), std::string::npos);
  EXPECT_NE(text.find("b=9"), std::string::npos);
  EXPECT_NE(text.find("l=20"), std::string::npos);
}

}  // namespace
}  // namespace valmod::mp
