// Tests for the query scheduler: bounded admission, priorities, deadlines,
// cooperative cancellation, and concurrent submitters.

#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace valmod::service {
namespace {

using namespace std::chrono_literals;

TEST(QuerySchedulerTest, RunsJobsAndReturnsPayloads) {
  QueryScheduler scheduler(SchedulerOptions{2, 16});
  std::vector<std::shared_ptr<QueryScheduler::Ticket>> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = scheduler.Submit(
        [i](const Deadline&) -> Result<std::string> {
          return std::string("job-") + std::to_string(i);
        });
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 0; i < 8; ++i) {
    auto result = tickets[static_cast<std::size_t>(i)]->Wait();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, "job-" + std::to_string(i));
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active, 0u);
}

TEST(QuerySchedulerTest, ErrorsPropagateAsStatuses) {
  QueryScheduler scheduler(SchedulerOptions{1, 4});
  auto ticket = scheduler.Submit([](const Deadline&) -> Result<std::string> {
    return Status::InvalidArgument("bad params");
  });
  ASSERT_TRUE(ticket.ok());
  auto result = (*ticket)->Wait();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuerySchedulerTest, BoundedAdmissionRejectsWhenFull) {
  QueryScheduler scheduler(SchedulerOptions{1, 2});
  // Block the single worker so the queue can fill behind it.
  std::atomic<bool> release{false};
  auto blocker = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string("done");
  });
  ASSERT_TRUE(blocker.ok());
  // Wait until the blocker occupies the worker (queue drained to 0).
  while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);

  auto a = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("a"); });
  auto b = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("b"); });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Equal priority: the newcomer has no claim over the queued work, so it
  // is the one turned away — with the structured retryable code and a
  // backoff hint, not free-text advice.
  auto rejected = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("c"); });
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(rejected.status().retry_after_ms(), 0);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.stats().shed, 0u);

  release.store(true);
  EXPECT_TRUE((*blocker)->Wait().ok());
  EXPECT_TRUE((*a)->Wait().ok());
  EXPECT_TRUE((*b)->Wait().ok());
}

TEST(QuerySchedulerTest, ShedsLowestPriorityWhenOutrankedAtCapacity) {
  QueryScheduler scheduler(SchedulerOptions{1, 2});
  std::atomic<bool> release{false};
  auto blocker = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string("done");
  });
  ASSERT_TRUE(blocker.ok());
  while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);

  // Queue fills with two low-priority requests; low-2 is the newest of the
  // lowest class, i.e. the shed victim.
  auto low1 = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("1"); },
      /*priority=*/0);
  auto low2 = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("2"); },
      /*priority=*/0);
  ASSERT_TRUE(low1.ok());
  ASSERT_TRUE(low2.ok());

  auto high = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("h"); },
      /*priority=*/5);
  ASSERT_TRUE(high.ok());  // admitted by displacing low-2

  // The victim's Wait() latches the structured overload error immediately.
  auto victim = (*low2)->Wait();
  EXPECT_EQ(victim.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(victim.status().retry_after_ms(), 0);
  EXPECT_EQ(scheduler.stats().shed, 1u);
  EXPECT_EQ(scheduler.stats().rejected, 0u);

  release.store(true);
  EXPECT_TRUE((*blocker)->Wait().ok());
  EXPECT_TRUE((*low1)->Wait().ok());
  auto high_result = (*high)->Wait();
  ASSERT_TRUE(high_result.ok());
  EXPECT_EQ(*high_result, "h");
}

TEST(QuerySchedulerTest, ShedDisabledRejectsTheNewcomerInstead) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.shed_on_overload = false;
  QueryScheduler scheduler(options);
  std::atomic<bool> release{false};
  auto blocker = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string("done");
  });
  ASSERT_TRUE(blocker.ok());
  while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);
  auto low = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("l"); },
      /*priority=*/0);
  ASSERT_TRUE(low.ok());
  auto high = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> { return std::string("h"); },
      /*priority=*/5);
  EXPECT_EQ(high.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.stats().shed, 0u);
  release.store(true);
  EXPECT_TRUE((*blocker)->Wait().ok());
  EXPECT_TRUE((*low)->Wait().ok());
}

TEST(QuerySchedulerTest, QueueWaitAndServiceRateAccounting) {
  QueryScheduler scheduler(SchedulerOptions{1, 8});
  std::vector<std::shared_ptr<QueryScheduler::Ticket>> tickets;
  for (int i = 0; i < 4; ++i) {
    auto ticket =
        scheduler.Submit([](const Deadline&) -> Result<std::string> {
          std::this_thread::sleep_for(2ms);
          return std::string("ok");
        });
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (const auto& ticket : tickets) ASSERT_TRUE(ticket->Wait().ok());
  const SchedulerStats stats = scheduler.stats();
  // Four 2ms jobs through one worker: later jobs waited, and the EWMA saw
  // every completion.
  EXPECT_GT(stats.mean_service_ms, 0.0);
  EXPECT_GE(stats.max_queue_wait_ms, stats.mean_queue_wait_ms);
  EXPECT_GT(stats.max_queue_wait_ms, 0.0);
  EXPECT_GT(stats.retry_after_ms, 0);
}

TEST(QuerySchedulerTest, WatchdogCountsOverruns) {
  SchedulerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.watchdog_factor = 2.0;
  QueryScheduler scheduler(options);
  // 1ms budget, ~40ms runtime: finishes well past factor × budget. The
  // job ignores its deadline on purpose — that is the stall the watchdog
  // exists to make visible.
  auto ticket = scheduler.Submit(
      [](const Deadline&) -> Result<std::string> {
        std::this_thread::sleep_for(40ms);
        return std::string("late");
      },
      0, Deadline::After(0.001));
  ASSERT_TRUE(ticket.ok());
  auto result = (*ticket)->Wait();
  // Either the pre-start gate caught the expired deadline (fast machine
  // jitter) or the job ran long; only the ran-long path counts overruns.
  if (result.ok()) {
    EXPECT_EQ(scheduler.stats().overruns, 1u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(QuerySchedulerTest, HigherPriorityRunsFirst) {
  QueryScheduler scheduler(SchedulerOptions{1, 16});
  std::atomic<bool> release{false};
  auto blocker = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string("done");
  });
  ASSERT_TRUE(blocker.ok());
  while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);

  std::mutex order_mutex;
  std::vector<std::string> order;
  auto record = [&](const std::string& tag) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(tag);
  };
  std::vector<std::shared_ptr<QueryScheduler::Ticket>> tickets;
  // Admitted while the worker is blocked: low, low, HIGH, low.
  const struct { const char* tag; int priority; } jobs[] = {
      {"low-1", 0}, {"low-2", 0}, {"high", 5}, {"low-3", 0}};
  for (const auto& job : jobs) {
    std::string tag = job.tag;
    auto ticket = scheduler.Submit(
        [&record, tag](const Deadline&) -> Result<std::string> {
          record(tag);
          return tag;
        },
        job.priority);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  release.store(true);
  for (const auto& ticket : tickets) ASSERT_TRUE(ticket->Wait().ok());

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "high");  // highest priority jumps the queue
  // FIFO within a priority class.
  EXPECT_EQ(order[1], "low-1");
  EXPECT_EQ(order[2], "low-2");
  EXPECT_EQ(order[3], "low-3");
}

TEST(QuerySchedulerTest, ExpiredDeadlineSkipsExecution) {
  QueryScheduler scheduler(SchedulerOptions{1, 4});
  std::atomic<bool> ran{false};
  auto ticket = scheduler.Submit(
      [&](const Deadline&) -> Result<std::string> {
        ran.store(true);
        return std::string("never");
      },
      0, Deadline::After(-1.0));
  ASSERT_TRUE(ticket.ok());
  auto result = (*ticket)->Wait();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(scheduler.stats().expired, 1u);
}

TEST(QuerySchedulerTest, CancelBeforeStartSkipsExecution) {
  QueryScheduler scheduler(SchedulerOptions{1, 8});
  std::atomic<bool> release{false};
  auto blocker = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string("done");
  });
  ASSERT_TRUE(blocker.ok());
  while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);

  std::atomic<bool> ran{false};
  auto victim = scheduler.Submit([&](const Deadline&) -> Result<std::string> {
    ran.store(true);
    return std::string("never");
  });
  ASSERT_TRUE(victim.ok());
  (*victim)->Cancel();
  release.store(true);
  auto result = (*victim)->Wait();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
}

TEST(QuerySchedulerTest, CancelMidRunFiresTheJobsDeadline) {
  QueryScheduler scheduler(SchedulerOptions{1, 4});
  std::atomic<bool> started{false};
  auto ticket = scheduler.Submit(
      [&](const Deadline& deadline) -> Result<std::string> {
        started.store(true);
        // A long-running algorithm's cooperative checkpoint loop.
        while (!deadline.Expired()) std::this_thread::sleep_for(1ms);
        return Status::DeadlineExceeded("unwound at a checkpoint");
      });
  ASSERT_TRUE(ticket.ok());
  while (!started.load()) std::this_thread::sleep_for(1ms);
  (*ticket)->Cancel();  // flips the deadline the job is polling
  auto result = (*ticket)->Wait();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST(QuerySchedulerTest, ConcurrentSubmittersAllComplete) {
  QueryScheduler scheduler(SchedulerOptions{4, 256});
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> succeeded{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto ticket = scheduler.Submit(
            [c, i](const Deadline&) -> Result<std::string> {
              return std::to_string(c) + ":" + std::to_string(i);
            });
        if (!ticket.ok()) continue;
        auto result = (*ticket)->Wait();
        if (result.ok() &&
            *result == std::to_string(c) + ":" + std::to_string(i)) {
          succeeded.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(succeeded.load(), kClients * kPerClient);
  EXPECT_EQ(scheduler.stats().completed,
            static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(QuerySchedulerTest, DestructorResolvesQueuedTickets) {
  std::shared_ptr<QueryScheduler::Ticket> orphan;
  std::atomic<bool> release{false};
  std::thread releaser;
  {
    QueryScheduler scheduler(SchedulerOptions{1, 8});
    auto blocker =
        scheduler.Submit([&](const Deadline&) -> Result<std::string> {
          while (!release.load()) std::this_thread::sleep_for(1ms);
          return std::string("done");
        });
    ASSERT_TRUE(blocker.ok());
    while (scheduler.stats().active == 0) std::this_thread::sleep_for(1ms);
    auto queued = scheduler.Submit(
        [](const Deadline&) -> Result<std::string> { return std::string("q"); });
    ASSERT_TRUE(queued.ok());
    orphan = *queued;
    // Unblock the worker from outside so the destructor's join completes.
    releaser = std::thread([&] {
      std::this_thread::sleep_for(20ms);
      release.store(true);
    });
  }  // destructor drains the queue, resolving the orphan, then joins
  releaser.join();
  // The scheduler is gone; the queued ticket must be resolved, not hung.
  // Usually it was cancelled at shutdown; if the worker won the race it
  // completed normally — either way Wait() returns immediately.
  auto result = orphan->Wait();
  EXPECT_TRUE(result.status().code() == StatusCode::kDeadlineExceeded ||
              (result.ok() && *result == "q"));
}

}  // namespace
}  // namespace valmod::service
