// Windowed streaming-profile tests: eviction parity against batch STOMP on
// the retained window, incremental top-k parity, the anchored-normalization
// drift regression, and concurrent append/read through the service Dataset.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "mp/stomp.h"
#include "mp/streaming.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "service/registry.h"

namespace valmod::mp {
namespace {

/// Batch oracle: STOMP profile of the last `window` raw values.
MatrixProfile BatchProfile(const std::vector<double>& raw, std::size_t window,
                           std::size_t length) {
  const std::size_t n = std::min(raw.size(), window);
  std::vector<double> retained(raw.end() - static_cast<long>(n), raw.end());
  auto series = series::DataSeries::Create(std::move(retained));
  EXPECT_TRUE(series.ok());
  auto batch = ComputeStomp(*series, length, {});
  EXPECT_TRUE(batch.ok());
  return *std::move(batch);
}

void ExpectProfilesMatch(const MatrixProfile& maintained,
                         const MatrixProfile& batch, double tolerance,
                         const std::string& context) {
  ASSERT_EQ(maintained.size(), batch.size()) << context;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (std::isfinite(batch.distances[i])) {
      EXPECT_NEAR(maintained.distances[i], batch.distances[i], tolerance)
          << context << " row " << i;
    } else {
      EXPECT_FALSE(std::isfinite(maintained.distances[i]))
          << context << " row " << i;
    }
  }
}

struct WindowedCase {
  std::string generator;
  std::uint64_t seed;
  std::size_t n;
  std::size_t length;
  std::size_t max_points;
};

class StreamingWindowedTest : public ::testing::TestWithParam<WindowedCase> {};

TEST_P(StreamingWindowedTest, EvictionParityWithBatchOnRetainedWindow) {
  const WindowedCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, c.seed);
  ASSERT_TRUE(series.ok());
  const std::vector<double> raw(series->values().begin(),
                                series->values().end());

  StreamingOptions options;
  options.max_points = c.max_points;
  auto stream = StreamingProfile::Create(c.length, options);
  ASSERT_TRUE(stream.ok());

  // Feed in randomized batch sizes (append/evict interleavings differ per
  // seed) and check parity at several checkpoints deep into eviction.
  std::mt19937_64 rng(c.seed * 7919 + 13);
  std::uniform_int_distribution<std::size_t> batch_size(1, 2 * c.length);
  std::size_t fed = 0;
  std::size_t next_check = 2 * c.max_points;
  while (fed < raw.size()) {
    const std::size_t take = std::min(batch_size(rng), raw.size() - fed);
    ASSERT_TRUE(
        stream->AppendAll({raw.data() + fed, take}).ok());
    fed += take;
    if (fed >= next_check || fed == raw.size()) {
      next_check += c.max_points;
      const std::vector<double> prefix(raw.begin(),
                                       raw.begin() + static_cast<long>(fed));
      const MatrixProfile batch =
          BatchProfile(prefix, c.max_points, c.length);
      ExpectProfilesMatch(stream->ProfileSnapshot(), batch, 2e-5,
                          "checkpoint " + std::to_string(fed));
      EXPECT_EQ(stream->size(), std::min(fed, c.max_points));
      EXPECT_EQ(stream->window_start(),
                fed - std::min(fed, c.max_points));
    }
  }
  EXPECT_EQ(stream->total_appended(), raw.size());
}

TEST_P(StreamingWindowedTest, TopKMatchesBatchOracle) {
  const WindowedCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, c.seed + 1);
  ASSERT_TRUE(series.ok());
  const std::vector<double> raw(series->values().begin(),
                                series->values().end());

  StreamingOptions options;
  options.max_points = c.max_points;
  auto stream = StreamingProfile::Create(c.length, options);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->AppendAll(raw).ok());

  const MatrixProfile batch = BatchProfile(raw, c.max_points, c.length);
  // Both rankings run through the same TopKMotifs/TopKDiscords free
  // functions, so any disagreement is a profile disagreement, not a
  // ranking-convention one.
  const std::size_t k = 5;
  const auto motifs = stream->TopMotifs(k);
  const auto batch_motifs = TopKMotifs(batch, k);
  ASSERT_EQ(motifs.size(), batch_motifs.size());
  for (std::size_t r = 0; r < motifs.size(); ++r) {
    EXPECT_EQ(motifs[r].offset_a, batch_motifs[r].offset_a) << "rank " << r;
    EXPECT_EQ(motifs[r].offset_b, batch_motifs[r].offset_b) << "rank " << r;
    EXPECT_NEAR(motifs[r].distance, batch_motifs[r].distance, 2e-5)
        << "rank " << r;
  }
  const auto discords = stream->TopDiscords(k);
  const auto batch_discords = TopKDiscords(batch, k);
  ASSERT_EQ(discords.size(), batch_discords.size());
  for (std::size_t r = 0; r < discords.size(); ++r) {
    EXPECT_EQ(discords[r].offset, batch_discords[r].offset) << "rank " << r;
    EXPECT_NEAR(discords[r].distance, batch_discords[r].distance, 2e-5)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, StreamingWindowedTest,
    ::testing::Values(
        WindowedCase{"random_walk", 11, 1200, 16, 128},
        WindowedCase{"random_walk", 23, 900, 24, 200},
        WindowedCase{"sine", 37, 1500, 32, 256},
        WindowedCase{"ecg", 41, 1000, 25, 150},
        WindowedCase{"random_walk", 53, 2000, 8, 64}));

TEST(StreamingWindowedProfileTest, WindowSmallerThanTwoLengthsRejected) {
  StreamingOptions options;
  options.max_points = 31;
  EXPECT_FALSE(StreamingProfile::Create(16, options).ok());
  options.max_points = 32;
  EXPECT_TRUE(StreamingProfile::Create(16, options).ok());
}

TEST(StreamingWindowedProfileTest, AppendAllRejectsBatchAtomically) {
  StreamingOptions options;
  auto stream = StreamingProfile::Create(4, options);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->AppendAll(std::vector<double>{1, 2, 3, 4, 5}).ok());
  const std::vector<double> bad = {6.0, 7.0, std::nan(""), 8.0};
  const Status status = stream->AppendAll(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("index 2"), std::string::npos)
      << status.message();
  // Nothing from the bad batch landed.
  EXPECT_EQ(stream->size(), 5u);
  EXPECT_EQ(stream->total_appended(), 5u);
}

TEST(StreamingWindowedProfileTest, MemoryBoundedAtHundredTimesWindow) {
  const std::size_t window = 512;
  StreamingOptions options;
  options.max_points = window;
  auto stream = StreamingProfile::Create(16, options);
  ASSERT_TRUE(stream.ok());

  auto series = synth::ByName("random_walk", 100 * window, 5);
  ASSERT_TRUE(series.ok());
  std::size_t high_water = 0;
  const auto values = series->values();
  for (std::size_t fed = 0; fed < values.size(); fed += window / 4) {
    const std::size_t take = std::min(window / 4, values.size() - fed);
    ASSERT_TRUE(stream->AppendAll(values.subspan(fed, take)).ok());
    high_water = std::max(high_water, stream->MemoryBytes());
  }
  EXPECT_EQ(stream->size(), window);
  EXPECT_EQ(stream->total_appended(), 100 * window);
  // All maintained arrays are O(window); ~6 doubles-or-int64 per retained
  // point, each buffer at most ~2x live + growth slack.
  EXPECT_LE(high_water, 40 * window * sizeof(double));
}

TEST(StreamingWindowedProfileTest, RepetitiveDataSurvivesEvictionChurn) {
  // Constant + periodic data makes every window a tie: eviction repair must
  // not degrade into quadratic re-orphan storms, and the profile must stay
  // exactly 0 where matches exist.
  StreamingOptions options;
  options.max_points = 96;
  auto stream = StreamingProfile::Create(8, options);
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(stream->Append(3.5).ok());
  }
  const MatrixProfile profile = stream->ProfileSnapshot();
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile.indices[i] >= 0) {
      EXPECT_DOUBLE_EQ(profile.distances[i], 0.0) << i;
      EXPECT_LT(profile.indices[i],
                static_cast<std::int64_t>(profile.size()));
    }
  }
}

// ---------------------------------------------------------------------------
// Anchored-normalization drift regression (the caveat README documents):
// a fixed anchor makes the incremental variance cancel catastrophically once
// the window mean drifts far from it; periodic re-anchoring keeps parity.
// ---------------------------------------------------------------------------

std::vector<double> LevelShiftStream(std::size_t n_high, std::size_t n_low) {
  // A stretch at level 1e6, then a sine around 0: once the window slides
  // past the shift the retained values sit ~1e6 away from the fixed anchor.
  std::vector<double> values;
  values.reserve(n_high + n_low);
  for (std::size_t i = 0; i < n_high; ++i) {
    values.push_back(1e6 + std::sin(0.4 * static_cast<double>(i)));
  }
  for (std::size_t i = 0; i < n_low; ++i) {
    values.push_back(std::sin(0.31 * static_cast<double>(i)) +
                     0.2 * std::sin(0.043 * static_cast<double>(i)));
  }
  return values;
}

double MaxBatchError(bool reanchor) {
  const std::size_t length = 16;
  const std::size_t window = 128;
  const std::vector<double> raw = LevelShiftStream(100, 500);

  StreamingOptions options;
  options.max_points = window;
  options.reanchor = reanchor;
  auto stream = StreamingProfile::Create(length, options);
  EXPECT_TRUE(stream.ok());
  EXPECT_TRUE(stream->AppendAll(raw).ok());

  const MatrixProfile maintained = stream->ProfileSnapshot();
  const MatrixProfile batch = BatchProfile(raw, window, length);
  EXPECT_EQ(maintained.size(), batch.size());
  double max_error = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!std::isfinite(batch.distances[i])) continue;
    max_error = std::max(
        max_error, std::abs(maintained.distances[i] - batch.distances[i]));
  }
  return max_error;
}

TEST(StreamingReanchorTest, ReanchoringKeepsParityWhereFixedAnchorDrifts) {
  const double with_reanchor = MaxBatchError(/*reanchor=*/true);
  const double fixed_anchor = MaxBatchError(/*reanchor=*/false);
  // Re-anchored: same accuracy as the non-drifting parity suites.
  EXPECT_LT(with_reanchor, 1e-5) << "re-anchored error";
  // Fixed anchor: the mean^2/variance cancellation visibly corrupts the
  // distances (this is the regression documented in the README — if this
  // starts passing with a tiny error, the conditioning analysis changed).
  EXPECT_GT(fixed_anchor, 1e-4) << "fixed-anchor error";
  EXPECT_GT(fixed_anchor, 100.0 * with_reanchor);
}

// ---------------------------------------------------------------------------
// Concurrency: appends race snapshot/profile/top-k readers through the
// service Dataset (run under TSan in CI).
// ---------------------------------------------------------------------------

TEST(StreamingWindowedConcurrencyTest, AppendsRaceReaders) {
  auto dataset = service::Dataset::CreateStreaming(
      "stream", /*subsequence_length=*/16, /*exclusion_fraction=*/0.5,
      /*max_points=*/256);
  ASSERT_TRUE(dataset.ok());
  auto series = synth::ByName("random_walk", 4096, 77);
  ASSERT_TRUE(series.ok());
  const auto values = series->values();

  std::thread appender([&] {
    for (std::size_t fed = 0; fed < values.size(); fed += 32) {
      ASSERT_TRUE((*dataset)->Append(values.subspan(fed, 32)).ok());
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto state = (*dataset)->StreamingProfileSnapshot();
        if (state.ok()) {
          EXPECT_LE(state->profile.size(), 256u);
        }
        auto top = (*dataset)->StreamingTopKSnapshot(3, 3);
        if (top.ok()) {
          EXPECT_LE(top->motifs.size(), 3u);
        }
        (void)(*dataset)->Snapshot();  // batch materialization racing appends
        (void)(*dataset)->Memory();
      }
    });
  }
  appender.join();
  for (std::thread& reader : readers) reader.join();

  // Final state parity: maintained profile equals batch on the retained
  // window even after the concurrent churn.
  auto state = (*dataset)->StreamingProfileSnapshot();
  ASSERT_TRUE(state.ok());
  const std::vector<double> raw(values.begin(), values.end());
  const MatrixProfile batch = BatchProfile(raw, 256, 16);
  ExpectProfilesMatch(state->profile, batch, 2e-5, "after concurrency");
}

}  // namespace
}  // namespace valmod::mp
