// Tests for discord (anomaly) extraction from matrix profiles.

#include <gtest/gtest.h>

#include <vector>

#include "mp/discord.h"
#include "mp/stomp.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

MatrixProfile MakeProfile(std::vector<double> distances,
                          std::vector<int64_t> indices, std::size_t length,
                          std::size_t exclusion) {
  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = exclusion;
  profile.distances = std::move(distances);
  profile.indices = std::move(indices);
  return profile;
}

TEST(DiscordTest, PicksLargestRowMinimum) {
  MatrixProfile profile =
      MakeProfile({1.0, 7.0, 2.0, 3.0}, {2, 3, 0, 2}, 5, 1);
  auto discords = ExtractTopKDiscords(profile, 1);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 1u);
  EXPECT_EQ((*discords)[0].offset, 1);
  EXPECT_DOUBLE_EQ((*discords)[0].distance, 7.0);
}

TEST(DiscordTest, SeparatesChosenDiscords) {
  // Offsets 4 and 5 both score high but overlap under exclusion 3.
  MatrixProfile profile = MakeProfile({1.0, 1.0, 1.0, 1.0, 9.0, 8.5, 1.0, 7.0},
                                      {1, 0, 3, 2, 0, 0, 0, 0}, 4, 3);
  auto discords = ExtractTopKDiscords(profile, 2);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 2u);
  EXPECT_EQ((*discords)[0].offset, 4);
  EXPECT_EQ((*discords)[1].offset, 7);  // 5 skipped: within 3 of 4
}

TEST(DiscordTest, SkipsRowsWithoutNeighbors) {
  MatrixProfile profile =
      MakeProfile({kInfinity, 3.0}, {-1, 0}, 4, 1);
  auto discords = ExtractTopKDiscords(profile, 2);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 1u);
  EXPECT_EQ((*discords)[0].offset, 1);
}

TEST(DiscordTest, RejectsZeroK) {
  MatrixProfile profile = MakeProfile({1.0}, {0}, 2, 1);
  EXPECT_EQ(ExtractTopKDiscords(profile, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiscordTest, FindsInjectedAnomaly) {
  // A sine wave with one corrupted stretch: the anomaly has the farthest
  // nearest neighbor at the anomaly length.
  auto series = synth::Sine({.length = 1200,
                             .seed = 2,
                             .period = 60.0,
                             .amplitude = 1.0,
                             .noise_stddev = 0.02});
  ASSERT_TRUE(series.ok());
  std::vector<double> data(series->values().begin(), series->values().end());
  for (std::size_t i = 600; i < 660; ++i) {
    data[i] += ((i % 7) < 3 ? 1.8 : -1.4);  // structured corruption
  }
  auto corrupted = series::DataSeries::Create(std::move(data));
  ASSERT_TRUE(corrupted.ok());

  auto profile = ComputeStomp(*corrupted, 60, {});
  ASSERT_TRUE(profile.ok());
  auto discords = ExtractTopKDiscords(*profile, 1);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 1u);
  EXPECT_NEAR(static_cast<double>((*discords)[0].offset), 615.0, 75.0);
}

}  // namespace
}  // namespace valmod::mp
