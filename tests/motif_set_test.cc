// Tests for motif-set expansion.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/motif_set.h"
#include "core/valmod.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::core {
namespace {

mp::MotifPair MakePair(int64_t a, int64_t b, std::size_t length, double d) {
  mp::MotifPair pair;
  pair.offset_a = a;
  pair.offset_b = b;
  pair.length = length;
  pair.distance = d;
  pair.normalized_distance = series::LengthNormalizedDistance(d, length);
  return pair;
}

TEST(MotifSetTest, RecoversAllPlantedOccurrences) {
  synth::PlantedMotifOptions plant;
  plant.length = 8000;
  plant.seed = 5;
  plant.motif_length = 120;
  plant.occurrences = 5;
  plant.occurrence_noise = 0.02;
  auto planted = synth::PlantedMotif(plant);
  ASSERT_TRUE(planted.ok());

  // Find the best pair at the motif length, then expand it.
  ValmodOptions options;
  options.min_length = 120;
  options.max_length = 120;
  auto result = RunValmod(planted->series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->per_length[0].motifs.empty());
  const mp::MotifPair seed = result->per_length[0].motifs[0];

  MotifSetOptions set_options;
  set_options.radius_factor = 3.0;
  auto set = ExpandMotifSet(planted->series, seed, set_options);
  ASSERT_TRUE(set.ok());

  // Every planted occurrence must be represented by a member close to it.
  for (std::size_t plant_offset : planted->motif_offsets) {
    bool found = false;
    for (const MotifSetMember& member : set->members) {
      if (std::abs(member.offset - static_cast<int64_t>(plant_offset)) <=
          16) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "occurrence at " << plant_offset << " missed";
  }
}

TEST(MotifSetTest, SeedsComeFirstWithZeroDistance) {
  auto series = synth::ByName("sine", 1000, 7);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 50;
  options.max_length = 50;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->per_length[0].motifs.empty());
  const mp::MotifPair seed = result->per_length[0].motifs[0];

  auto set = ExpandMotifSet(*series, seed, {});
  ASSERT_TRUE(set.ok());
  ASSERT_GE(set->members.size(), 2u);
  EXPECT_NEAR(set->members[0].distance, 0.0, 1e-9);
  EXPECT_NEAR(set->members[1].distance, 0.0, 1e-9);
  const std::vector<int64_t> head = {set->members[0].offset,
                                     set->members[1].offset};
  EXPECT_TRUE(std::find(head.begin(), head.end(), seed.offset_a) !=
              head.end());
  EXPECT_TRUE(std::find(head.begin(), head.end(), seed.offset_b) !=
              head.end());
}

TEST(MotifSetTest, MembersRespectExclusionZone) {
  auto series = synth::ByName("sine", 2000, 9);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 60;
  options.max_length = 60;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  const mp::MotifPair seed = result->per_length[0].motifs[0];

  MotifSetOptions set_options;
  set_options.radius_factor = 10.0;  // generous: admit many candidates
  auto set = ExpandMotifSet(*series, seed, set_options);
  ASSERT_TRUE(set.ok());
  const std::size_t exclusion = 30;  // 60 * 0.5
  for (std::size_t x = 0; x < set->members.size(); ++x) {
    for (std::size_t y = x + 1; y < set->members.size(); ++y) {
      EXPECT_GE(std::abs(set->members[x].offset - set->members[y].offset),
                static_cast<int64_t>(exclusion));
    }
  }
}

TEST(MotifSetTest, AbsoluteRadiusOverridesFactor) {
  auto series = synth::ByName("random_walk", 600, 11);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 30;
  options.max_length = 30;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  const mp::MotifPair seed = result->per_length[0].motifs[0];

  MotifSetOptions tight;
  tight.radius = 0.0;  // only exact matches (the seeds themselves)
  auto set = ExpandMotifSet(*series, seed, tight);
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(set->radius, 0.0);
  EXPECT_EQ(set->members.size(), 2u);
}

TEST(MotifSetTest, MembersSortedByDistanceWithinRadius) {
  auto series = synth::ByName("ecg", 1500, 13);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 40;
  options.max_length = 40;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  const mp::MotifPair seed = result->per_length[0].motifs[0];

  MotifSetOptions set_options;
  set_options.radius_factor = 4.0;
  auto set = ExpandMotifSet(*series, seed, set_options);
  ASSERT_TRUE(set.ok());
  for (std::size_t i = 1; i < set->members.size(); ++i) {
    EXPECT_LE(set->members[i - 1].distance,
              set->members[i].distance + 1e-12);
  }
  for (const MotifSetMember& member : set->members) {
    EXPECT_LE(member.distance, set->radius + 1e-9);
  }
}

TEST(MotifSetTest, ValidatesArguments) {
  auto series = synth::ByName("random_walk", 200, 15);
  ASSERT_TRUE(series.ok());
  mp::MotifPair bogus;  // unpopulated
  EXPECT_EQ(ExpandMotifSet(*series, bogus, {}).status().code(),
            StatusCode::kInvalidArgument);

  mp::MotifPair overflow = MakePair(0, 190, 50, 1.0);
  EXPECT_EQ(ExpandMotifSet(*series, overflow, {}).status().code(),
            StatusCode::kOutOfRange);

  mp::MotifPair valid = MakePair(0, 100, 50, 1.0);
  MotifSetOptions bad;
  bad.radius = -1.0;
  EXPECT_FALSE(ExpandMotifSet(*series, valid, bad).ok());
  MotifSetOptions bad_factor;
  bad_factor.radius_factor = -2.0;
  EXPECT_FALSE(ExpandMotifSet(*series, valid, bad_factor).ok());
}

}  // namespace
}  // namespace valmod::core
