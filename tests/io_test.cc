// Tests for series I/O: delimited text, binary, and artifact CSV emission.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "series/data_series.h"
#include "series/io.h"

namespace valmod::series {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/valmod_io_" + name;
  }

  void WriteText(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  }
};

TEST_F(IoTest, DelimitedRoundTrip) {
  Rng rng(1);
  std::vector<double> values(100);
  for (auto& v : values) v = rng.Gaussian();
  auto series = DataSeries::Create(values);
  ASSERT_TRUE(series.ok());

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteDelimited(*series, path).ok());
  auto loaded = ReadDelimited(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), series->size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->values()[i], values[i]);
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, ReadsSelectedColumn) {
  const std::string path = TempPath("columns.csv");
  WriteText(path, "1.0,10.0\n2.0,20.0\n3.0,30.0\n");
  auto col1 = ReadDelimited(path, 1);
  ASSERT_TRUE(col1.ok());
  EXPECT_EQ(col1->size(), 3u);
  EXPECT_DOUBLE_EQ(col1->values()[2], 30.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, SkipsSingleHeaderLine) {
  const std::string path = TempPath("header.csv");
  WriteText(path, "value\n1.5\n2.5\n");
  auto loaded = ReadDelimited(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->values()[0], 1.5);
  std::remove(path.c_str());
}

TEST_F(IoTest, AcceptsWhitespaceAndTabDelimiters) {
  const std::string path = TempPath("tsv.tsv");
  WriteText(path, "1.0\t9\n 2.0\t8\n3.0\t7\n");
  auto loaded = ReadDelimited(path, 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->values()[1], 2.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, ParsesScientificNotationAndCrlf) {
  const std::string path = TempPath("sci.csv");
  WriteText(path, "1.5e-3\r\n-2E+2\r\n3.25\r\n");
  auto loaded = ReadDelimited(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->values()[0], 1.5e-3);
  EXPECT_DOUBLE_EQ(loaded->values()[1], -200.0);
  EXPECT_DOUBLE_EQ(loaded->values()[2], 3.25);
  std::remove(path.c_str());
}

TEST_F(IoTest, SkipsBlankLines) {
  const std::string path = TempPath("blanks.csv");
  WriteText(path, "1.0\n\n2.0\n\n\n3.0\n");
  auto loaded = ReadDelimited(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsNonNumericBody) {
  const std::string path = TempPath("bad.csv");
  WriteText(path, "1.0\noops\n3.0\n");
  EXPECT_EQ(ReadDelimited(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsMissingColumn) {
  const std::string path = TempPath("short.csv");
  WriteText(path, "1.0\n2.0\n");
  EXPECT_EQ(ReadDelimited(path, 3).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsMissingFile) {
  EXPECT_EQ(ReadDelimited(TempPath("nonexistent.csv")).status().code(),
            StatusCode::kIoError);
}

TEST_F(IoTest, RejectsEmptyFile) {
  const std::string path = TempPath("empty.csv");
  WriteText(path, "");
  EXPECT_FALSE(ReadDelimited(path).ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsNonFiniteValuesWithFileAndLineContext) {
  const std::string path = TempPath("nonfinite.csv");
  WriteText(path, "1.0\nnan\n3.0\n");
  const Status status = ReadDelimited(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The error names the offending line and file — the reader boundary is
  // where that context exists; downstream stats validation only knows an
  // index into an anonymous buffer.
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find(path), std::string::npos);
  std::remove(path.c_str());

  const std::string inf_path = TempPath("inf.csv");
  WriteText(inf_path, "1.0\n-inf\n3.0\n");
  EXPECT_EQ(ReadDelimited(inf_path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(inf_path.c_str());
}

TEST_F(IoTest, AllowNonfiniteDropsBadSamplesAsMissingReadings) {
  const std::string path = TempPath("nonfinite_ok.csv");
  WriteText(path, "1.0\nnan\n3.0\ninf\n5.0\n");
  ReadOptions options;
  options.allow_nonfinite = true;
  auto loaded = ReadDelimited(path, 0, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->values()[0], 1.0);
  EXPECT_DOUBLE_EQ(loaded->values()[1], 3.0);
  EXPECT_DOUBLE_EQ(loaded->values()[2], 5.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsNonFiniteValuesWithIndexContext) {
  const std::string path = TempPath("nonfinite.bin");
  const double raw[3] = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(raw), sizeof(raw));
  const Status status = ReadBinary(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("index 1"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryAllowNonfiniteDropsBadSamples) {
  const std::string path = TempPath("nonfinite_ok.bin");
  const double raw[5] = {1.0, std::numeric_limits<double>::infinity(), 3.0,
                         std::numeric_limits<double>::quiet_NaN(), 5.0};
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(raw), sizeof(raw));
  ReadOptions options;
  options.allow_nonfinite = true;
  auto loaded = ReadBinary(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->values()[1], 3.0);
  EXPECT_DOUBLE_EQ(loaded->values()[2], 5.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRoundTrip) {
  Rng rng(2);
  std::vector<double> values(257);
  for (auto& v : values) v = rng.Gaussian();
  auto series = DataSeries::Create(values);
  ASSERT_TRUE(series.ok());

  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteBinary(*series, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), series->size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->values()[i], values[i]);
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsTruncatedFile) {
  const std::string path = TempPath("trunc.bin");
  WriteText(path, "abc");  // 3 bytes: not a multiple of sizeof(double)
  EXPECT_EQ(ReadBinary(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, ColumnsCsvWritesPaddedTable) {
  const std::string path = TempPath("cols.csv");
  std::vector<Column> columns = {{"a", {1.0, 2.0, 3.0}}, {"b", {9.0}}};
  ASSERT_TRUE(WriteColumnsCsv(columns, path).ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,9");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");
  std::getline(in, line);
  EXPECT_EQ(line, "3,");
  std::remove(path.c_str());
}

TEST_F(IoTest, ColumnsCsvRejectsEmpty) {
  EXPECT_EQ(WriteColumnsCsv({}, TempPath("x.csv")).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace valmod::series
