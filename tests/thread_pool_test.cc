// Tests for the persistent thread pool behind ParallelFor: coverage and
// partitioning semantics, thread reuse across regions (the no-spawn-per-batch
// guarantee), nested and concurrent regions, and the status variant's
// deterministic error selection.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace valmod {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, hits.size(), threads,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleElementRangesRunInline) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(5, 6, 4, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusesThreadsAcrossRegions) {
  // Warm the shared pool to the width this test asks for…
  ParallelFor(0, 256, 4, [](std::size_t) {});
  const std::uint64_t created_after_warmup =
      ThreadPool::Shared().threads_created();
  EXPECT_GE(created_after_warmup, 1u);

  // …then dispatch many more regions: a spawn-per-call implementation
  // would create 3-4 fresh threads per region; the pool must create none.
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    ParallelFor(0, 256, 4,
                [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 256u);
  EXPECT_EQ(ThreadPool::Shared().threads_created(), created_after_warmup);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  std::atomic<std::size_t> inner_total{0};
  ParallelFor(0, 8, 4, [&](std::size_t) {
    ParallelFor(0, 16, 4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, ConcurrentTopLevelRegionsBothComplete) {
  std::atomic<std::size_t> a{0}, b{0};
  std::thread other([&] {
    ParallelFor(0, 500, 4, [&](std::size_t) { a.fetch_add(1); });
  });
  ParallelFor(0, 500, 4, [&](std::size_t) { b.fetch_add(1); });
  other.join();
  EXPECT_EQ(a.load(), 500u);
  EXPECT_EQ(b.load(), 500u);
}

TEST(ThreadPoolTest, WidthBeyondMaxThreadsStillCoversRange) {
  std::vector<std::atomic<int>> hits(4096);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, hits.size(), 200, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
  EXPECT_LE(ThreadPool::Shared().worker_count(), ThreadPool::kMaxThreads);
}

TEST(ParallelForWithStatusTest, ReportsLowestFailingIndex) {
  const Status status =
      ParallelForWithStatus(0, 100, 4, [&](std::size_t i) -> Status {
        if (i == 3 || i == 77) {
          return Status::InvalidArgument("fail at " + std::to_string(i));
        }
        return Status::Ok();
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("fail at 3"), std::string::npos);
}

TEST(ParallelForWithStatusTest, AllOkReturnsOk) {
  EXPECT_TRUE(ParallelForWithStatus(0, 64, 4, [](std::size_t) {
                return Status::Ok();
              }).ok());
}

}  // namespace
}  // namespace valmod
