// Tests for STOMP: exactness against the brute-force ground truth across
// workloads, parallel/serial equivalence, and edge behaviours.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/timer.h"
#include "mp/brute_force.h"
#include "mp/stomp.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::mp {
namespace {

struct StompCase {
  std::string generator;
  std::size_t n;
  std::size_t length;
  double exclusion_fraction;
};

class StompExactnessTest : public ::testing::TestWithParam<StompCase> {};

TEST_P(StompExactnessTest, MatchesBruteForce) {
  const StompCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 23);
  ASSERT_TRUE(series.ok());

  ProfileOptions options;
  options.exclusion_fraction = c.exclusion_fraction;
  auto stomp = ComputeStomp(*series, c.length, options);
  auto brute = ComputeBruteForce(*series, c.length, options);
  ASSERT_TRUE(stomp.ok());
  ASSERT_TRUE(brute.ok());

  ASSERT_EQ(stomp->size(), brute->size());
  EXPECT_EQ(stomp->exclusion_zone, brute->exclusion_zone);
  for (std::size_t i = 0; i < brute->size(); ++i) {
    EXPECT_NEAR(stomp->distances[i], brute->distances[i], 2e-6)
        << "row " << i;
  }
}

TEST_P(StompExactnessTest, IndicesPointAtMatchingDistances) {
  const StompCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 29);
  ASSERT_TRUE(series.ok());
  ProfileOptions options;
  options.exclusion_fraction = c.exclusion_fraction;
  auto stomp = ComputeStomp(*series, c.length, options);
  ASSERT_TRUE(stomp.ok());

  for (std::size_t i = 0; i < stomp->size(); i += 11) {
    if (stomp->indices[i] < 0) continue;
    const std::size_t j = static_cast<std::size_t>(stomp->indices[i]);
    // Claimed neighbor must be outside the exclusion zone and its distance
    // must match the profile value when recomputed definitionally.
    EXPECT_GE(i > j ? i - j : j - i, stomp->exclusion_zone);
    auto d = series::SubsequenceDistance(*series, i, j, c.length);
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR(*d, stomp->distances[i], 2e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, StompExactnessTest,
    ::testing::Values(StompCase{"random_walk", 300, 20, 0.5},
                      StompCase{"random_walk", 257, 16, 0.25},
                      StompCase{"sine", 400, 50, 0.5},
                      StompCase{"ecg", 500, 40, 0.5},
                      StompCase{"astro", 350, 30, 0.5},
                      StompCase{"entomology", 400, 25, 0.5},
                      StompCase{"seismic", 450, 35, 1.0}));

TEST(StompTest, ParallelMatchesSerial) {
  auto series = synth::ByName("ecg", 1200, 31);
  ASSERT_TRUE(series.ok());
  ProfileOptions serial;
  ProfileOptions parallel;
  parallel.num_threads = 4;
  auto a = ComputeStomp(*series, 64, serial);
  auto b = ComputeStomp(*series, 64, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ(a->distances[i], b->distances[i]) << i;
    EXPECT_EQ(a->indices[i], b->indices[i]) << i;
  }
}

TEST(StompTest, ConstantSeriesAllZeroDistances) {
  auto series = series::DataSeries::Create(std::vector<double>(100, 5.0));
  ASSERT_TRUE(series.ok());
  auto profile = ComputeStomp(*series, 10, {});
  ASSERT_TRUE(profile.ok());
  for (std::size_t i = 0; i < profile->size(); ++i) {
    EXPECT_DOUBLE_EQ(profile->distances[i], 0.0);
    EXPECT_GE(profile->indices[i], 0);
  }
}

TEST(StompTest, FullExclusionLeavesNoMatches) {
  auto series = synth::ByName("random_walk", 40, 2);
  ASSERT_TRUE(series.ok());
  // Exclusion zone of one full window length with length > n/2: no pairs.
  ProfileOptions options;
  options.exclusion_fraction = 1.0;
  auto profile = ComputeStomp(*series, 25, options);
  ASSERT_TRUE(profile.ok());
  for (std::size_t i = 0; i < profile->size(); ++i) {
    EXPECT_TRUE(std::isinf(profile->distances[i]));
    EXPECT_EQ(profile->indices[i], -1);
  }
}

TEST(StompTest, RejectsOversizedLength) {
  auto series = synth::ByName("random_walk", 50, 3);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(ComputeStomp(*series, 51, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ComputeStomp(*series, 0, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StompTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 4000, 5);
  ASSERT_TRUE(series.ok());
  ProfileOptions options;
  options.deadline = Deadline::After(-1.0);  // already expired
  EXPECT_EQ(ComputeStomp(*series, 64, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StompTest, ExclusionZoneForFractions) {
  EXPECT_EQ(ExclusionZoneFor(100, 0.5), 50u);
  EXPECT_EQ(ExclusionZoneFor(101, 0.5), 51u);  // ceil
  EXPECT_EQ(ExclusionZoneFor(100, 0.0), 1u);   // always excludes self
  EXPECT_EQ(ExclusionZoneFor(4, 0.25), 1u);
  EXPECT_EQ(ExclusionZoneFor(100, 1.0), 100u);
}

}  // namespace
}  // namespace valmod::mp
