// Chaos suite: drives the serving stack under armed fault points and
// asserts the robustness contract — every failure is a structured error,
// the process never dies, the registry stays intact, and the result cache
// is never poisoned by fault-tainted or partial responses. The in-process
// tests exercise Service + RetryClient directly; under VALMOD_SERVER_BINARY
// the real binary is driven over TCP (--port=0), including the
// mid-response-disconnect SIGPIPE regression.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "mp/stomp.h"
#include "series/generators.h"
#include "service/client.h"
#include "service/server.h"

namespace valmod::service {
namespace {

using json::Value;

Value Roundtrip(Service& service, const std::string& line) {
  const std::string response = service.HandleRequestLine(line);
  auto parsed = json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << "unparseable response: " << response;
  return parsed.ok() ? *parsed : Value();
}

bool Ok(const Value& response) { return response.GetBool("ok", false); }

std::string ErrorCode(const Value& response) {
  const Value* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code", "");
}

double RetryAfterMs(const Value& response) {
  const Value* error = response.Find("error");
  return error == nullptr ? 0.0 : error->GetNumber("retry_after_ms", 0.0);
}

/// Fast retry settings so chaos tests spend milliseconds, not seconds,
/// in backoff.
RetryOptions FastRetry() {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff_ms = 1;
  options.max_backoff_ms = 10;
  return options;
}

/// Every test starts and ends with a clean global injector: fault points
/// are process-global state, and a leaked armed point would bleed into
/// later tests in this binary.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFaultInjectionEnabled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
    fault::FaultInjector::Global().DisarmAll();
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      fault::FaultInjector::Global().DisarmAll();
    }
  }
};

TEST_F(ChaosTest, AllocFailureDuringLoadRetriesCleanly) {
  Service service;
  // Arm through the `faults` verb — the runtime chaos path, not the test
  // API — so the verb's directive plumbing is covered too.
  Value armed = Roundtrip(service,
      R"({"verb":"faults","params":)"
      R"({"arm":"registry.load.alloc=alloc:nth=1"}})");
  ASSERT_TRUE(Ok(armed)) << armed.Serialize();
  ASSERT_EQ(armed.Find("result")->Find("armed")->AsArray().size(), 1u);

  // The first load attempt hits the injected allocation failure; the retry
  // client backs off and the second attempt succeeds — which proves the
  // failed load released the dataset name instead of leaking a claim.
  CallbackTransport transport(
      [&service](const std::string& line) {
        return service.HandleRequestLine(line);
      });
  RetryClient client(transport, FastRetry());
  auto loaded = client.Call(
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"random_walk","n":2048,"seed":3}})");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(Ok(*loaded)) << loaded->Serialize();
  EXPECT_GE(client.stats().retries, 1u);

  // Registry intact and the dataset fully usable.
  ASSERT_EQ(service.registry().List().size(), 1u);
  Value motifs = Roundtrip(service,
      R"({"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":34}})");
  EXPECT_TRUE(Ok(motifs)) << motifs.Serialize();
}

TEST_F(ChaosTest, FaultTaintedResponsesAreNeverCached) {
  Service service;
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"sine","n":1024}})");
  // The first scheduled job fails with an injected Unavailable.
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.code = StatusCode::kUnavailable;
  spec.nth = 1;
  fault::FaultInjector::Global().Arm("scheduler.worker.stall", spec);

  const std::string request =
      R"({"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":33}})";
  Value failed = Roundtrip(service, request);
  EXPECT_FALSE(Ok(failed));
  EXPECT_EQ(ErrorCode(failed), "Unavailable");

  // The failure was not cached: the same request computes fresh (miss),
  // and only then becomes a hit.
  Value stats = Roundtrip(service, R"({"verb":"stats"})");
  EXPECT_DOUBLE_EQ(
      stats.Find("result")->Find("cache")->GetNumber("entries", -1), 0.0);
  Value fresh = Roundtrip(service, request);
  ASSERT_TRUE(Ok(fresh)) << fresh.Serialize();
  EXPECT_FALSE(fresh.GetBool("cached", true));
  EXPECT_TRUE(Roundtrip(service, request).GetBool("cached", false));
}

TEST_F(ChaosTest, PartialResponsesAreNeverCached) {
  Service service;
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"random_walk","n":8192,"seed":1}})");
  // Burn most of the deadline before the job starts so the wide length
  // range cannot complete. The run may still (a) finish everything on a
  // fast machine, or (b) miss even the initial scan — both are legal; the
  // invariant under test is that a response flagged partial never lands
  // in the cache.
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kDelay;
  stall.delay_ms = 150;
  fault::FaultInjector::Global().Arm("scheduler.worker.stall", stall);

  const std::string request =
      R"({"verb":"motifs","dataset":"d",)"
      R"("params":{"lmin":64,"lmax":256,"allow_partial":true},)"
      R"("timeout_ms":250})";
  for (int round = 0; round < 2; ++round) {
    Value response = Roundtrip(service, request);
    if (Ok(response)) {
      // Complete or partial — but a partial response must say so, must
      // report how far it got, and must never be served from cache.
      if (response.Find("result")->GetBool("partial", false)) {
        const double completed =
            response.Find("result")->GetNumber("completed_lmax", 0.0);
        EXPECT_GE(completed, 64.0);
        EXPECT_LT(completed, 256.0);
        EXPECT_FALSE(response.GetBool("cached", true));
      }
    } else {
      EXPECT_EQ(ErrorCode(response), "DeadlineExceeded");
    }
    // Whatever the outcome, nothing partial or failed may have been
    // cached. (A fully-completed run *is* cacheable; detect that case and
    // stop asserting emptiness.)
    Value stats = Roundtrip(service, R"({"verb":"stats"})");
    const bool completed_fully =
        Ok(response) && !response.Find("result")->GetBool("partial", false);
    if (!completed_fully) {
      EXPECT_DOUBLE_EQ(
          stats.Find("result")->Find("cache")->GetNumber("entries", -1), 0.0)
          << "round " << round;
    }
  }
}

TEST_F(ChaosTest, ShedVictimGetsStructuredOverloadError) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  Service service(options);
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"random_walk","n":2048}})");
  // Pin the single worker on its first job long enough for the queue to
  // fill and the priority fight to happen deterministically.
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kDelay;
  stall.delay_ms = 500;
  stall.nth = 1;
  fault::FaultInjector::Global().Arm("scheduler.worker.stall", stall);

  Value occupant, victim, winner;
  std::thread occupant_thread([&service, &occupant] {
    occupant = Roundtrip(service,
        R"({"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":33}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  std::thread victim_thread([&service, &victim] {
    victim = Roundtrip(service,
        R"({"verb":"motifs","dataset":"d","params":{"lmin":34,"lmax":35}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  std::thread winner_thread([&service, &winner] {
    winner = Roundtrip(service,
        R"({"verb":"motifs","dataset":"d",)"
        R"("params":{"lmin":36,"lmax":37},"priority":5})");
  });
  occupant_thread.join();
  victim_thread.join();
  winner_thread.join();

  EXPECT_TRUE(Ok(occupant)) << occupant.Serialize();
  EXPECT_TRUE(Ok(winner)) << winner.Serialize();
  // The queued default-priority request was shed in favor of the
  // priority-5 newcomer, with the full structured overload contract: the
  // machine-readable code and a usable backoff hint.
  ASSERT_FALSE(Ok(victim)) << victim.Serialize();
  EXPECT_EQ(ErrorCode(victim), "ResourceExhausted");
  EXPECT_NE(victim.Find("error")->GetString("message", "").find("shed"),
            std::string::npos);
  EXPECT_GT(RetryAfterMs(victim), 0.0);
  EXPECT_EQ(service.scheduler().stats().shed, 1u);
}

TEST_F(ChaosTest, ProbabilisticFaultStormNeverKillsTheService) {
  ServiceOptions options;
  options.cache_capacity = 0;  // every request recomputes (and re-rolls)
  Service service(options);
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"ecg","n":1024}})");
  // Half of all scheduled jobs fail with Unavailable, deterministically
  // under seed 7 — reruns replay the exact same fire pattern.
  ASSERT_TRUE(fault::FaultInjector::Global()
                  .ArmFromString(
                      "scheduler.worker.stall=error:code=Unavailable:"
                      "p=0.5:seed=7")
                  .ok());

  CallbackTransport transport(
      [&service](const std::string& line) {
        return service.HandleRequestLine(line);
      });
  RetryClient client(transport, FastRetry());
  int ok_count = 0;
  for (int i = 0; i < 20; ++i) {
    auto response = client.Call(
        R"({"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":33}})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (Ok(*response)) {
      ++ok_count;
    } else {
      // Exhausted retries still end in a structured overload error.
      EXPECT_EQ(ErrorCode(*response), "Unavailable");
    }
  }
  // With 6 attempts per call at p=0.5, nearly every call lands.
  EXPECT_GE(ok_count, 15);
  EXPECT_GE(client.stats().retries, 1u);

  // The storm is over: disarm, and the service is fully healthy — no
  // poisoned state, registry intact.
  fault::FaultInjector::Global().DisarmAll();
  Value health = Roundtrip(service, R"({"verb":"health"})");
  ASSERT_TRUE(Ok(health)) << health.Serialize();
  EXPECT_EQ(health.Find("result")->GetString("status", ""), "ok");
  EXPECT_DOUBLE_EQ(health.Find("result")->GetNumber("datasets", -1), 1.0);
}

TEST_F(ChaosTest, HealthReportsDegradedWhileFaultsArmed) {
  Service service;
  Value healthy = Roundtrip(service, R"({"verb":"health"})");
  ASSERT_TRUE(Ok(healthy));
  EXPECT_EQ(healthy.Find("result")->GetString("status", ""), "ok");

  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"faults","params":{"arm":"server.write=delay:delay_ms=1"}})")));
  Value degraded = Roundtrip(service, R"({"verb":"health"})");
  ASSERT_TRUE(Ok(degraded));
  EXPECT_EQ(degraded.Find("result")->GetString("status", ""), "degraded");
  const Value::Array& reasons =
      degraded.Find("result")->Find("reasons")->AsArray();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0].AsString(), "faults_armed");
  EXPECT_DOUBLE_EQ(degraded.Find("result")->GetNumber("faults_armed", 0), 1.0);

  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"faults","params":{"disarm_all":true}})")));
  Value recovered = Roundtrip(service, R"({"verb":"health"})");
  EXPECT_EQ(recovered.Find("result")->GetString("status", ""), "ok");
}

// Sustained windowed ingestion under chaos: two appender threads stream
// into a bounded dataset while query threads hammer the maintained verbs
// and batch snapshots, with append/snapshot allocation faults firing
// probabilistically throughout. Asserts the streaming contract end to end:
// every append eventually lands (atomically — a faulted batch appends
// nothing), the retained window and memory stay bounded while total
// history grows, and the maintained profile still equals a batch STOMP of
// the final retained window.
TEST_F(ChaosTest, SustainedWindowedAppendSoak) {
  const std::size_t length = 32;
  const std::size_t window = 1024;
  const std::size_t batch_points = 64;
  const std::size_t batches_per_thread = 150;
  const std::size_t num_appenders = 2;

  Service service;
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"s",)"
      R"("params":{"streaming_length":32,"max_points":1024}})")));
  ASSERT_TRUE(fault::FaultInjector::Global()
                  .ArmFromString(
                      "streaming.append.alloc=error:code=Unavailable:"
                      "p=0.15:seed=11")
                  .ok());
  ASSERT_TRUE(fault::FaultInjector::Global()
                  .ArmFromString(
                      "registry.snapshot.alloc=error:code=Unavailable:"
                      "p=0.10:seed=13")
                  .ok());

  auto source = synth::ByName(
      "random_walk", num_appenders * batches_per_thread * batch_points, 21);
  ASSERT_TRUE(source.ok());
  const auto values = source->values();

  std::atomic<std::size_t> appends_ok{0};
  std::vector<std::thread> appenders;
  for (std::size_t t = 0; t < num_appenders; ++t) {
    appenders.emplace_back([&, t] {
      CallbackTransport transport([&service](const std::string& line) {
        return service.HandleRequestLine(line);
      });
      RetryClient client(transport, FastRetry());
      const std::size_t offset = t * batches_per_thread * batch_points;
      for (std::size_t b = 0; b < batches_per_thread; ++b) {
        std::string request =
            R"({"verb":"append","dataset":"s","params":{"values":[)";
        for (std::size_t i = 0; i < batch_points; ++i) {
          if (i > 0) request += ',';
          request += std::to_string(values[offset + b * batch_points + i]);
        }
        request += "]}}";
        auto response = client.Call(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_TRUE(Ok(*response)) << response->Serialize();
        appends_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<bool> done{false};
  std::thread querier([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Maintained verbs + batch snapshot materialization racing appends
      // and the armed snapshot fault; any failure must be structured.
      for (const char* request :
           {R"({"verb":"profile","dataset":"s"})",
            R"({"verb":"motifs","dataset":"s","params":{"k":3}})",
            R"({"verb":"discords","dataset":"s","params":{"k":2}})",
            R"({"verb":"stats"})"}) {
        Value response = Roundtrip(service, request);
        if (!Ok(response)) {
          EXPECT_NE(ErrorCode(response), "") << response.Serialize();
        }
      }
    }
  });

  for (std::thread& appender : appenders) appender.join();
  done.store(true, std::memory_order_relaxed);
  querier.join();
  fault::FaultInjector::Global().DisarmAll();
  EXPECT_EQ(appends_ok.load(), num_appenders * batches_per_thread);

  // Occupancy: the window retained exactly `window` points while the total
  // history grew ~19x past it, and the footprint reflects the window, not
  // the history.
  Value stats = Roundtrip(service, R"({"verb":"stats"})");
  ASSERT_TRUE(Ok(stats)) << stats.Serialize();
  const Value& info = stats.Find("result")->Find("datasets")->AsArray()[0];
  const double total = num_appenders * batches_per_thread * batch_points;
  EXPECT_DOUBLE_EQ(info.GetNumber("points", 0), window);
  EXPECT_DOUBLE_EQ(info.GetNumber("total_appended", 0), total);
  EXPECT_DOUBLE_EQ(info.GetNumber("evicted", 0), total - window);
  EXPECT_DOUBLE_EQ(info.GetNumber("window_occupancy", 0), 1.0);
  const double memory_bytes = info.GetNumber("memory_bytes", 0);
  EXPECT_GT(memory_bytes, 0.0);
  // Generous absolute cap — but far below what O(total) retention of the
  // ~19k-point history across the maintained arrays would cost.
  EXPECT_LT(memory_bytes, 1.5e6);

  // Final parity: the maintained profile equals batch STOMP of the
  // retained window (the snapshot values are anchor-shifted, which
  // z-normalized distances cannot observe).
  auto dataset = service.registry().Get("s");
  ASSERT_TRUE(dataset.ok());
  auto state = (*dataset)->StreamingProfileSnapshot();
  ASSERT_TRUE(state.ok());
  auto snapshot = (*dataset)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto batch = mp::ComputeStomp((*snapshot)->series(), length);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(state->profile.size(), batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_NEAR(state->profile.distances[i], batch->distances[i], 2e-5)
        << "row " << i;
  }
}

#ifdef VALMOD_SERVER_BINARY

/// Runs the real valmod_server over TCP on an ephemeral port (--port=0),
/// parsing the bound port from its "listening on 127.0.0.1:<port>" line.
/// Shutdown() speaks the shutdown verb and reports the process exit
/// status; the destructor falls back to it so a failing test still reaps
/// the child.
class ServerProcess {
 public:
  explicit ServerProcess(const std::string& env_prefix = "") {
    const std::string command = env_prefix + VALMOD_SERVER_BINARY +
                                " --port=0 2>&1 </dev/null";
    pipe_ = popen(command.c_str(), "r");
    if (pipe_ == nullptr) return;
    char line[256];
    if (std::fgets(line, sizeof(line), pipe_) != nullptr) {
      const char* colon = std::strrchr(line, ':');
      if (colon != nullptr) port_ = std::atoi(colon + 1);
    }
  }

  ~ServerProcess() {
    if (pipe_ != nullptr) Shutdown();
  }

  bool started() const { return pipe_ != nullptr && port_ > 0; }
  int port() const { return port_; }

  int Shutdown() {
    if (pipe_ == nullptr) return -1;
    {
      TcpTransport transport(port_);
      (void)transport.RoundTrip(R"({"verb":"shutdown"})");
    }
    char buffer[4096];
    while (std::fread(buffer, 1, sizeof(buffer), pipe_) > 0) {
    }
    const int status = pclose(pipe_);
    pipe_ = nullptr;
    return status;
  }

 private:
  std::FILE* pipe_ = nullptr;
  int port_ = 0;
};

// The SIGPIPE regression: a client that disconnects while the server still
// has responses in flight must cost that one connection, never the
// process. The armed server.write delay guarantees responses are written
// *after* the disconnect, so the failing-send path genuinely runs.
TEST(ServerChaosTcpTest, MidStreamDisconnectDoesNotKillTheServer) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  ServerProcess server;
  ASSERT_TRUE(server.started());

  {
    TcpTransport setup(server.port());
    auto loaded = setup.RoundTrip(
        R"({"verb":"load","dataset":"d",)"
        R"("params":{"generator":"random_walk","n":1024}})");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto armed = setup.RoundTrip(
        R"({"verb":"faults","params":)"
        R"({"arm":"server.write=delay:delay_ms=150"}})");
    ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  }

  // The doomed connection: pipeline several requests, then close without
  // reading a byte. The server works through them one delayed write at a
  // time; by the second write the kernel has seen our RST, so send() on an
  // unfixed server raises SIGPIPE.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const std::string burst =
        R"({"verb":"stats"})" "\n" R"({"verb":"stats"})" "\n"
        R"({"verb":"stats"})" "\n" R"({"verb":"stats"})" "\n";
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));
    ::close(fd);  // FIN now; responses arriving later draw RSTs
  }
  // Let the server hit the failed write (2 delayed responses ≈ 300 ms).
  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  // The process survived with its state intact: a fresh connection gets
  // real answers.
  {
    TcpTransport probe(server.port());
    auto disarmed = probe.RoundTrip(
        R"({"verb":"faults","params":{"disarm_all":true}})");
    ASSERT_TRUE(disarmed.ok()) << disarmed.status().ToString();
    auto health = probe.RoundTrip(R"({"verb":"health"})");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    auto parsed = json::Parse(*health);
    ASSERT_TRUE(parsed.ok()) << *health;
    EXPECT_TRUE(Ok(*parsed)) << *health;
    EXPECT_EQ(parsed->Find("result")->GetString("status", ""), "ok");
    EXPECT_DOUBLE_EQ(parsed->Find("result")->GetNumber("datasets", -1), 1.0);
  }
  EXPECT_EQ(server.Shutdown(), 0);
}

// Full client-retry loop against the real binary: a fault armed over TCP
// fails the first load, the RetryClient recovers, health reflects the
// armed/disarmed transitions.
TEST(ServerChaosTcpTest, FaultsVerbAndRetryClientOverTcp) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  ServerProcess server;
  ASSERT_TRUE(server.started());

  TcpTransport transport(server.port());
  RetryClient client(transport, FastRetry());

  auto armed = client.Call(
      R"({"verb":"faults","params":)"
      R"({"arm":"registry.load.alloc=alloc:nth=1"}})");
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  ASSERT_TRUE(Ok(*armed)) << armed->Serialize();

  auto loaded = client.Call(
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"ecg","n":1024}})");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(Ok(*loaded)) << loaded->Serialize();
  EXPECT_GE(client.stats().retries, 1u);

  auto degraded = client.Call(R"({"verb":"health"})");
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ((*degraded).Find("result")->GetString("status", ""), "degraded");

  ASSERT_TRUE(Ok(*client.Call(
      R"({"verb":"faults","params":{"disarm_all":true}})")));
  auto recovered = client.Call(R"({"verb":"health"})");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered).Find("result")->GetString("status", ""), "ok");

  auto motifs = client.Call(
      R"({"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":34}})");
  ASSERT_TRUE(motifs.ok());
  EXPECT_TRUE(Ok(*motifs)) << motifs->Serialize();

  EXPECT_EQ(server.Shutdown(), 0);
}

// VALMOD_FAULTS is applied at startup: the `faults` verb lists the
// env-armed point before any fault point has been hit.
TEST(ServerChaosTcpTest, EnvVarArmsFaultsAtStartup) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const std::string script =
      R"({"id":1,"verb":"faults"})" "\n"
      R"({"id":2,"verb":"shutdown"})" "\n";
  const std::string command =
      std::string("printf '%s' '") + script +
      "' | VALMOD_FAULTS='registry.snapshot.alloc=alloc:nth=5' " +
      VALMOD_SERVER_BINARY + " --stdio 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  EXPECT_EQ(pclose(pipe), 0);

  const std::size_t newline = output.find('\n');
  ASSERT_NE(newline, std::string::npos) << output;
  auto first = json::Parse(output.substr(0, newline));
  ASSERT_TRUE(first.ok()) << output;
  ASSERT_TRUE(Ok(*first)) << output;
  const Value::Array& armed = first->Find("result")->Find("armed")->AsArray();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].GetString("point", ""), "registry.snapshot.alloc");
  EXPECT_EQ(armed[0].GetString("kind", ""), "alloc");
  EXPECT_DOUBLE_EQ(armed[0].GetNumber("fires", -1), 0.0);
}

#endif  // VALMOD_SERVER_BINARY

}  // namespace
}  // namespace valmod::service
