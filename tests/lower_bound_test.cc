// Property tests for the VALMOD cross-length lower bound: admissibility
// (LB <= true distance) and rank invariance across length updates — the two
// properties the whole pruning scheme rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::core {
namespace {

struct LbCase {
  std::string generator;
  std::size_t n;
  std::size_t base_length;
  std::size_t max_extension;
};

class LowerBoundPropertyTest : public ::testing::TestWithParam<LbCase> {};

TEST_P(LowerBoundPropertyTest, AdmissibleForAllPairsAndExtensions) {
  const LbCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 101);
  ASSERT_TRUE(series.ok());

  // Dense sweep over row offsets, candidate offsets, and extensions.
  for (std::size_t i = 0; i + c.base_length + c.max_extension <= c.n;
       i += 29) {
    for (std::size_t j = 0; j + c.base_length + c.max_extension <= c.n;
         j += 41) {
      if (i == j) continue;
      for (std::size_t k : {std::size_t{1}, c.max_extension / 2,
                            c.max_extension}) {
        if (k == 0) continue;
        const std::size_t target = c.base_length + k;
        auto lb = PairLowerBound(*series, i, j, c.base_length, target);
        ASSERT_TRUE(lb.ok());
        auto d = series::SubsequenceDistance(*series, i, j, target);
        ASSERT_TRUE(d.ok());
        EXPECT_LE(*lb, *d + 1e-7)
            << "i=" << i << " j=" << j << " base=" << c.base_length
            << " target=" << target;
      }
    }
  }
}

TEST_P(LowerBoundPropertyTest, RankPreservedAcrossLengths) {
  const LbCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 103);
  ASSERT_TRUE(series.ok());

  const std::size_t i = c.n / 5;
  std::vector<std::size_t> candidates;
  for (std::size_t j = 0; j + c.base_length + c.max_extension <= c.n;
       j += 13) {
    if (j != i) candidates.push_back(j);
  }
  ASSERT_GE(candidates.size(), 3u);

  auto rank_at = [&](std::size_t target) {
    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t j : candidates) {
      auto lb = PairLowerBound(*series, i, j, c.base_length, target);
      EXPECT_TRUE(lb.ok());
      scored.emplace_back(*lb, j);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<std::size_t> order;
    for (const auto& [lb, j] : scored) order.push_back(j);
    return order;
  };

  // The sigma ratio is shared by every candidate of row i, so the LB
  // ordering must be identical at every target length.
  const auto base_rank = rank_at(c.base_length + 1);
  for (std::size_t k : {std::size_t{2}, c.max_extension}) {
    EXPECT_EQ(rank_at(c.base_length + k), base_rank) << "extension " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LowerBoundPropertyTest,
    ::testing::Values(LbCase{"random_walk", 400, 24, 32},
                      LbCase{"sine", 400, 32, 48},
                      LbCase{"ecg", 500, 40, 60},
                      LbCase{"astro", 450, 30, 40},
                      LbCase{"entomology", 500, 25, 50},
                      LbCase{"seismic", 500, 20, 30}));

TEST(BaseLowerBoundTest, Formula) {
  // rho <= 0 collapses to sqrt(l).
  EXPECT_DOUBLE_EQ(BaseLowerBound(0.0, 100), 10.0);
  EXPECT_DOUBLE_EQ(BaseLowerBound(-0.7, 100), 10.0);
  // rho = 1: perfectly correlated head, bound vanishes.
  EXPECT_NEAR(BaseLowerBound(1.0, 100), 0.0, 1e-12);
  // Intermediate value: sqrt(l (1 - rho^2)).
  EXPECT_NEAR(BaseLowerBound(0.6, 100), std::sqrt(100.0 * 0.64), 1e-12);
}

TEST(BaseLowerBoundTest, MonotonicallyShrinksWithCorrelation) {
  double previous = BaseLowerBound(0.05, 64);
  for (double rho = 0.1; rho <= 1.0; rho += 0.05) {
    const double current = BaseLowerBound(rho, 64);
    EXPECT_LE(current, previous + 1e-12) << "rho=" << rho;
    previous = current;
  }
}

TEST(ScaledLowerBoundTest, SigmaRatioScaling) {
  EXPECT_DOUBLE_EQ(ScaledLowerBound(10.0, 2.0, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(ScaledLowerBound(10.0, 2.0, 1.0), 20.0);
}

TEST(ScaledLowerBoundTest, DegenerateSigmasGiveZero) {
  EXPECT_DOUBLE_EQ(ScaledLowerBound(10.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ScaledLowerBound(10.0, 1.0, 0.0), 0.0);
}

TEST(PairLowerBoundTest, ValidatesArguments) {
  auto series = synth::ByName("random_walk", 100, 1);
  ASSERT_TRUE(series.ok());
  EXPECT_FALSE(PairLowerBound(*series, 0, 10, 20, 10).ok());  // base > target
  EXPECT_FALSE(PairLowerBound(*series, 0, 10, 0, 10).ok());   // base = 0
  EXPECT_FALSE(PairLowerBound(*series, 0, 95, 10, 20).ok());  // j overflows
  EXPECT_TRUE(PairLowerBound(*series, 0, 50, 10, 20).ok());
}

TEST(PairLowerBoundTest, ConstantRowWindowGivesZero) {
  std::vector<double> data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i) * 0.3);
  }
  for (std::size_t i = 20; i < 60; ++i) data[i] = 1.0;  // constant region
  auto series = series::DataSeries::Create(data);
  ASSERT_TRUE(series.ok());
  auto lb = PairLowerBound(*series, 25, 100, 20, 40);
  ASSERT_TRUE(lb.ok());
  EXPECT_DOUBLE_EQ(*lb, 0.0);
}

TEST(PairLowerBoundTest, ConstantCandidateStillAdmissible) {
  std::vector<double> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(static_cast<double>(i) * 0.21);
  }
  for (std::size_t i = 150; i < 200; ++i) data[i] = -0.4;
  auto series = series::DataSeries::Create(data);
  ASSERT_TRUE(series.ok());
  // Row non-constant, candidate constant at the base length.
  for (std::size_t target : {35u, 45u, 60u}) {
    auto lb = PairLowerBound(*series, 10, 155, 30, target);
    auto d = series::SubsequenceDistance(*series, 10, 155, target);
    ASSERT_TRUE(lb.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_LE(*lb, *d + 1e-7) << "target=" << target;
  }
}

TEST(PairLowerBoundTest, TargetEqualsBaseStillAdmissible) {
  auto series = synth::ByName("ecg", 300, 9);
  ASSERT_TRUE(series.ok());
  // k = 0: the bound must not exceed the actual distance at the base length.
  auto lb = PairLowerBound(*series, 10, 100, 40, 40);
  auto d = series::SubsequenceDistance(*series, 10, 100, 40);
  ASSERT_TRUE(lb.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_LE(*lb, *d + 1e-7);
}

}  // namespace
}  // namespace valmod::core
