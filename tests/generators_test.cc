// Tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::synth {
namespace {

TEST(RandomWalkTest, DeterministicAndSized) {
  auto a = RandomWalk({.length = 500, .seed = 9});
  auto b = RandomWalk({.length = 500, .seed = 9});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), 500u);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(a->values()[i], b->values()[i]);
  }
  auto c = RandomWalk({.length = 500, .seed = 10});
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->values()[499], c->values()[499]);
}

TEST(RandomWalkTest, RejectsBadOptions) {
  EXPECT_FALSE(RandomWalk({.length = 0}).ok());
  EXPECT_FALSE(RandomWalk({.length = 10, .seed = 1, .step_stddev = 0.0}).ok());
}

TEST(SineTest, OscillatesAtRequestedPeriod) {
  auto series = Sine({.length = 1000,
                      .seed = 1,
                      .period = 100.0,
                      .amplitude = 1.0,
                      .noise_stddev = 0.0});
  ASSERT_TRUE(series.ok());
  // Shifted by one full period the series repeats exactly (no noise).
  for (std::size_t i = 0; i + 100 < 1000; i += 37) {
    EXPECT_NEAR(series->values()[i], series->values()[i + 100], 1e-9);
  }
}

TEST(SineTest, RejectsBadPeriod) {
  EXPECT_FALSE(Sine({.length = 10, .seed = 1, .period = 0.0}).ok());
}

TEST(EcgTest, BeatsRepeatApproximately) {
  EcgOptions options;
  options.length = 4000;
  options.seed = 3;
  options.samples_per_beat = 200.0;
  options.beat_jitter = 0.0;
  options.amplitude_jitter = 0.0;
  options.noise_stddev = 0.0;
  options.baseline_wander_amplitude = 0.0;
  auto series = Ecg(options);
  ASSERT_TRUE(series.ok());
  // With all jitter off, consecutive beats are exact copies.
  auto d = series::SubsequenceDistance(*series, 200, 400, 200);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-6);
}

TEST(EcgTest, HasProminentRPeaks) {
  auto series = Ecg({.length = 2000, .seed = 5});
  ASSERT_TRUE(series.ok());
  const double max_value =
      *std::max_element(series->values().begin(), series->values().end());
  const double mean = series->stats().Mean(0, series->size());
  EXPECT_GT(max_value, mean + 0.5);  // R peaks stand far above baseline
}

TEST(EcgTest, RejectsTinyBeat) {
  EXPECT_FALSE(Ecg({.length = 100, .seed = 1, .samples_per_beat = 2.0}).ok());
}

TEST(AstroTest, QuasiPeriodicStructure) {
  AstroOptions options;
  options.length = 3000;
  options.seed = 2;
  options.base_period = 150.0;
  options.period_drift = 0.0;
  options.noise_stddev = 0.0;
  auto series = Astro(options);
  ASSERT_TRUE(series.ok());
  // Without drift the pulse repeats with the base period (tolerance covers
  // accumulated floating-point phase rounding).
  auto d = series::SubsequenceDistance(*series, 300, 450, 150);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-4);
}

TEST(AstroTest, RejectsBadPeriod) {
  EXPECT_FALSE(Astro({.length = 10, .seed = 1, .base_period = 0.5}).ok());
}

TEST(SeismicTest, EventsInsertedAtReportedOnsets) {
  auto result = Seismic({.length = 30000, .seed = 4});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->event_onsets.size(), 0u);
  // Sample variance around an onset should exceed background variance.
  const auto& series = result->series;
  const auto& stats = series.stats();
  for (std::size_t onset : result->event_onsets) {
    if (onset + 200 >= series.size()) continue;
    const double event_var = stats.Variance(onset, 200);
    const double background_var = stats.Variance(0, series.size());
    EXPECT_GT(event_var, background_var * 0.5)
        << "event at " << onset << " not visible";
  }
}

TEST(SeismicTest, RejectsBadAr) {
  EXPECT_FALSE(Seismic({.length = 100, .seed = 1, .background_ar = 1.0}).ok());
}

TEST(EntomologyTest, GeneratesAndValidates) {
  auto series = Entomology({.length = 10000, .seed = 6});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10000u);
  EntomologyOptions bad;
  bad.length = 1000;
  bad.min_burst_duration = 500.0;
  bad.max_burst_duration = 100.0;
  EXPECT_FALSE(Entomology(bad).ok());
}

TEST(PlantedMotifTest, OccurrencesAreNearCopies) {
  PlantedMotifOptions options;
  options.length = 6000;
  options.seed = 8;
  options.motif_length = 150;
  options.occurrences = 3;
  options.occurrence_noise = 0.01;
  auto planted = PlantedMotif(options);
  ASSERT_TRUE(planted.ok());
  ASSERT_EQ(planted->motif_offsets.size(), 3u);

  // All occurrence pairs are close in z-normalized space.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      auto d = series::SubsequenceDistance(planted->series,
                                           planted->motif_offsets[i],
                                           planted->motif_offsets[j], 150);
      ASSERT_TRUE(d.ok());
      EXPECT_LT(*d, 1.0) << "occurrences " << i << "," << j;
    }
  }
}

TEST(PlantedMotifTest, OffsetsAreSeparated) {
  PlantedMotifOptions options;
  options.length = 8000;
  options.seed = 12;
  options.motif_length = 100;
  options.occurrences = 4;
  auto planted = PlantedMotif(options);
  ASSERT_TRUE(planted.ok());
  for (std::size_t i = 1; i < planted->motif_offsets.size(); ++i) {
    EXPECT_GE(planted->motif_offsets[i] - planted->motif_offsets[i - 1],
              options.motif_length);
  }
}

TEST(PlantedMotifTest, RejectsOvercrowding) {
  PlantedMotifOptions options;
  options.length = 500;
  options.motif_length = 100;
  options.occurrences = 5;
  EXPECT_FALSE(PlantedMotif(options).ok());
}

TEST(ByNameTest, DispatchesAllNames) {
  for (const std::string name : {"random_walk", "sine", "ecg", "astro",
                                 "seismic", "entomology"}) {
    auto series = ByName(name, 2048, 1);
    ASSERT_TRUE(series.ok()) << name;
    EXPECT_EQ(series->size(), 2048u) << name;
  }
  EXPECT_EQ(ByName("unknown", 100, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace valmod::synth
