// Shutdown-ordering and race coverage for QueryScheduler, written to run
// under TSan (the CI race job builds this file with -fsanitize=thread):
// Wait() racing scheduler destruction, Cancel() racing a shed, the
// exactly-once result latch under concurrent resolvers, and the watchdog
// gauge observed while a stalled job is still running.

#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace valmod::service {
namespace {

using namespace std::chrono_literals;

Result<std::string> QuickJob(const Deadline&) {
  return std::string("done");
}

// Destroying the scheduler while other threads sit in Wait() must resolve
// every outstanding ticket exactly once (queued ones as cancelled, running
// ones with their real result) — no hang, no use-after-free, no torn
// latch. Iterated because the interesting interleavings are rare.
TEST(SchedulerRaceTest, WaitRacingDestructionResolvesEveryTicket) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    std::vector<std::shared_ptr<QueryScheduler::Ticket>> tickets;
    std::vector<std::thread> waiters;
    std::atomic<int> resolved{0};
    {
      SchedulerOptions options;
      options.num_workers = 2;
      options.queue_capacity = 64;
      QueryScheduler scheduler(options);
      for (int i = 0; i < 12; ++i) {
        auto ticket = scheduler.Submit([](const Deadline&) {
          std::this_thread::sleep_for(1ms);
          return Result<std::string>(std::string("ok"));
        });
        ASSERT_TRUE(ticket.ok());
        tickets.push_back(*ticket);
      }
      for (const auto& ticket : tickets) {
        waiters.emplace_back([ticket, &resolved] {
          const Result<std::string> result = ticket->Wait();
          // Either the job ran ("ok") or destruction resolved it as an
          // orphan (kDeadlineExceeded, "scheduler shut down"); both are
          // terminal, structured outcomes.
          EXPECT_TRUE(result.ok() ||
                      result.status().code() == StatusCode::kDeadlineExceeded)
              << result.status().ToString();
          resolved.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // Scheduler destructor runs here, racing the Wait() calls above.
    }
    for (std::thread& t : waiters) t.join();
    EXPECT_EQ(resolved.load(), 12);
  }
}

// Cancel() racing the shed path: a queued ticket is simultaneously
// cancelled by its client and evicted by a higher-priority newcomer. The
// latch must hold — one terminal result, every Wait() returns, and the
// terminal code is one of the two legal outcomes.
TEST(SchedulerRaceTest, CancelRacingShedResolvesExactlyOnce) {
  for (int iteration = 0; iteration < 50; ++iteration) {
    SchedulerOptions options;
    options.num_workers = 1;
    options.queue_capacity = 1;
    QueryScheduler scheduler(options);

    // Occupy the single worker so the next submission sits in the queue.
    std::atomic<bool> release{false};
    auto occupant = scheduler.Submit([&release](const Deadline&) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(100us);
      }
      return Result<std::string>(std::string("occupant"));
    });
    ASSERT_TRUE(occupant.ok());
    // Wait until the occupant is executing (not merely queued) so the
    // victim deterministically lands in the queue instead of being bounced
    // off a queue the occupant still sits in.
    while (scheduler.stats().active == 0) {
      std::this_thread::sleep_for(100us);
    }

    auto victim = scheduler.Submit(QuickJob, /*priority=*/0);
    if (!victim.ok()) {
      release.store(true, std::memory_order_release);
      FAIL() << victim.status().ToString();
    }

    std::optional<Result<std::shared_ptr<QueryScheduler::Ticket>>> winner;
    std::thread canceller([&victim] { (*victim)->Cancel(); });
    std::thread outranker(
        [&] { winner.emplace(scheduler.Submit(QuickJob, /*priority=*/5)); });
    canceller.join();
    outranker.join();
    // Only now unblock the worker: the winner cannot run (and the victim
    // cannot be dequeued) until both racers have finished, so the
    // cancel-vs-shed race itself happens against a full, frozen queue.
    release.store(true, std::memory_order_release);
    if (winner->ok()) (void)(**winner)->Wait();

    const Result<std::string> outcome = (*victim)->Wait();
    // Shed (ResourceExhausted), cancelled before start (resolved as
    // kDeadlineExceeded), or — if the worker dequeued it before either —
    // it ran to completion. Never anything else, and Wait() always
    // returns.
    if (!outcome.ok()) {
      const StatusCode code = outcome.status().code();
      EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kDeadlineExceeded)
          << outcome.status().ToString();
    }
    (void)(*occupant)->Wait();
  }
}

// Many threads hammering Wait()/Done() on the same ticket while it
// completes: the latched result must be identical for every reader.
TEST(SchedulerRaceTest, ConcurrentWaitersAllSeeTheSameLatchedResult) {
  SchedulerOptions options;
  options.num_workers = 2;
  QueryScheduler scheduler(options);
  for (int round = 0; round < 10; ++round) {
    auto ticket = scheduler.Submit([round](const Deadline&) {
      std::this_thread::sleep_for(1ms);
      return Result<std::string>("result-" + std::to_string(round));
    });
    ASSERT_TRUE(ticket.ok());
    std::vector<std::thread> readers;
    std::vector<std::string> seen(8);
    for (int r = 0; r < 8; ++r) {
      readers.emplace_back([&, r] {
        (void)(*ticket)->Done();  // racy peek must be safe
        const Result<std::string> result = (*ticket)->Wait();
        ASSERT_TRUE(result.ok());
        seen[static_cast<std::size_t>(r)] = *result;
      });
    }
    for (std::thread& t : readers) t.join();
    for (const std::string& value : seen) {
      EXPECT_EQ(value, "result-" + std::to_string(round));
    }
    EXPECT_TRUE((*ticket)->Done());
  }
}

// stats() snapshotting while workers churn: the watchdog gauge walks the
// active-request map concurrently with job start/finish bookkeeping, and
// the stalled gauge must observe a deliberately over-budget job while it
// is still running.
TEST(SchedulerRaceTest, StatsRacingExecutionSeesTheStalledJob) {
  SchedulerOptions options;
  options.num_workers = 2;
  options.watchdog_factor = 2.0;
  QueryScheduler scheduler(options);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  // 10 ms budget, cooperatively ignored: stalled (>= 20 ms elapsed) long
  // before the job finishes.
  auto hog = scheduler.Submit(
      [&](const Deadline&) {
        started.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(1ms);
        }
        return Result<std::string>(std::string("late"));
      },
      /*priority=*/0, Deadline::After(0.010));
  ASSERT_TRUE(hog.ok());
  const auto pickup_start = std::chrono::steady_clock::now();
  while (!started.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() - pickup_start < 2s) {
    std::this_thread::sleep_for(100us);
  }
  if (!started.load(std::memory_order_acquire)) {
    // The 10 ms budget elapsed before any worker picked the job up (a
    // heavily loaded machine): it resolved as expired without running, so
    // there is nothing for the watchdog to observe this run.
    release.store(true, std::memory_order_release);
    EXPECT_EQ((*hog)->Wait().status().code(), StatusCode::kDeadlineExceeded);
    GTEST_SKIP() << "job expired before starting";
  }

  // Concurrent stats() readers while quick jobs flow through the other
  // worker; after the threshold passes, the hog shows up as stalled.
  std::atomic<bool> stop_polling{false};
  std::size_t max_stalled_seen = 0;
  std::thread poller([&] {
    while (!stop_polling.load(std::memory_order_acquire)) {
      const SchedulerStats stats = scheduler.stats();
      if (stats.stalled > max_stalled_seen) max_stalled_seen = stats.stalled;
      std::this_thread::sleep_for(1ms);
    }
  });
  for (int i = 0; i < 5; ++i) {
    auto quick = scheduler.Submit(QuickJob);
    ASSERT_TRUE(quick.ok());
    ASSERT_TRUE((*quick)->Wait().ok());
  }
  std::this_thread::sleep_for(40ms);  // 2 × 10 ms budget, with slack
  const SchedulerStats while_stalled = scheduler.stats();
  EXPECT_EQ(while_stalled.stalled, 1u);
  EXPECT_EQ(while_stalled.active, 1u);

  release.store(true, std::memory_order_release);
  ASSERT_TRUE((*hog)->Wait().ok());
  stop_polling.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GE(max_stalled_seen, 1u);

  const SchedulerStats after = scheduler.stats();
  EXPECT_EQ(after.stalled, 0u);
  EXPECT_EQ(after.overruns, 1u);
  EXPECT_EQ(after.completed, 6u);
}

// The async completion callback (the event loop's path into the
// scheduler) must fire exactly once per ticket, off every terminal
// transition — normal completion, cancellation, and shutdown orphaning —
// and never for a never-admitted submission.
TEST(SchedulerRaceTest, CompletionFiresExactlyOncePerTerminalTicket) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    constexpr int kJobs = 12;
    std::atomic<int> completions{0};
    std::vector<std::shared_ptr<QueryScheduler::Ticket>> tickets;
    {
      SchedulerOptions options;
      options.num_workers = 2;
      options.queue_capacity = 64;
      QueryScheduler scheduler(options);
      for (int i = 0; i < kJobs; ++i) {
        auto ticket = scheduler.Submit(
            [](const Deadline&) {
              std::this_thread::sleep_for(1ms);
              return Result<std::string>(std::string("ok"));
            },
            /*priority=*/0, Deadline(),
            [&completions](const Result<std::string>& result) {
              // Completed normally or orphaned by shutdown; both are
              // terminal and both must invoke the callback.
              EXPECT_TRUE(result.ok() || result.status().code() ==
                                             StatusCode::kDeadlineExceeded);
              completions.fetch_add(1, std::memory_order_relaxed);
            });
        ASSERT_TRUE(ticket.ok());
        tickets.push_back(*ticket);
      }
      // Cancel a few tickets concurrently with execution and destruction.
      std::thread canceller([&tickets] {
        for (std::size_t i = 0; i < tickets.size(); i += 3) {
          tickets[i]->Cancel();
        }
      });
      canceller.join();
      // Scheduler destructor races the in-flight jobs here.
    }
    EXPECT_EQ(completions.load(), kJobs)
        << "every admitted ticket fires its completion exactly once";
    // The latched result a Wait() observes matches what the completion
    // already saw — the callback is not a second result channel.
    for (const auto& ticket : tickets) {
      EXPECT_TRUE(ticket->Done());
    }
  }
}

// A completion that re-enters the scheduler (the fail-over path: a failed
// leader's completion promotes a waiter, which submits a fresh job) must
// not deadlock or tear state.
TEST(SchedulerRaceTest, CompletionMayReenterScheduler) {
  SchedulerOptions options;
  options.num_workers = 2;
  QueryScheduler scheduler(options);
  std::atomic<int> chained{0};
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;

  auto chain = scheduler.Submit(
      [](const Deadline&) { return Result<std::string>(std::string("a")); },
      /*priority=*/0, Deadline(),
      [&](const Result<std::string>& result) {
        ASSERT_TRUE(result.ok());
        chained.fetch_add(1, std::memory_order_relaxed);
        auto second = scheduler.Submit(
            [](const Deadline&) {
              return Result<std::string>(std::string("b"));
            },
            /*priority=*/0, Deadline(),
            [&](const Result<std::string>& inner) {
              ASSERT_TRUE(inner.ok());
              chained.fetch_add(1, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(mutex);
              done = true;
              cv.notify_all();
            });
        EXPECT_TRUE(second.ok());
      });
  ASSERT_TRUE(chain.ok());
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return done; }));
  EXPECT_EQ(chained.load(), 2);
}

}  // namespace
}  // namespace valmod::service
