// Tests for common utilities: Status, Result, Flags, Rng, Deadline.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flags.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace valmod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad length");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad length");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad length");
}

TEST(StatusTest, FactoriesMapToCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    VALMOD_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 7; };
  auto consume = [&]() -> Result<int> {
    VALMOD_ASSIGN_OR_RETURN(int x, produce());
    return x + 1;
  };
  EXPECT_EQ(consume().value(), 8);

  auto fail = []() -> Result<int> { return Status::Internal("boom"); };
  auto propagate = [&]() -> Result<int> {
    VALMOD_ASSIGN_OR_RETURN(int x, fail());
    return x;
  };
  EXPECT_EQ(propagate().status().code(), StatusCode::kInternal);
}

TEST(FlagsTest, ParsesEqualsAndBooleanForms) {
  const char* argv[] = {"prog", "--n=100", "--k=5", "--verbose",
                        "positional"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), 100);
  EXPECT_EQ(flags.GetInt("k", 0), 5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 123), 123);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(flags.GetString("s", "fallback"), "fallback");
  EXPECT_FALSE(flags.Has("n"));
}

TEST(FlagsTest, ParsesDoublesAndStrings) {
  const char* argv[] = {"prog", "--ratio=0.25", "--name=ecg"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("name", ""), "ecg");
  EXPECT_TRUE(flags.Has("ratio"));
}

TEST(FlagsTest, UnknownFlagsAgainstTable) {
  const char* argv[] = {"prog", "--threads=4", "--thread=4", "--lmax=200"};
  Flags flags = Flags::Parse(4, const_cast<char**>(argv));
  constexpr std::string_view kKnown[] = {"threads", "lmin", "lmax"};
  const std::vector<std::string> unknown = flags.UnknownFlags(kKnown);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "thread");
}

TEST(FlagsTest, RejectUnknownNamesTheFlagAndTheTable) {
  const char* argv[] = {"prog", "--thread=4"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  constexpr std::string_view kKnown[] = {"threads"};
  const Status status = flags.RejectUnknown(kKnown);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--thread"), std::string::npos);
  EXPECT_NE(status.message().find("--threads"), std::string::npos);
}

TEST(FlagsTest, RejectUnknownAcceptsKnownFlags) {
  const char* argv[] = {"prog", "--threads=4", "--lmin=10"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  constexpr std::string_view kKnown[] = {"threads", "lmin", "lmax"};
  EXPECT_TRUE(flags.RejectUnknown(kKnown).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Gaussian() != b.Gaussian()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(1.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, PastDeadlineExpires) {
  Deadline deadline = Deadline::After(-1.0);
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  Deadline deadline = Deadline::After(60.0);
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, CancelFlagExpiresCooperatively) {
  auto flag = std::make_shared<std::atomic<bool>>(false);
  Deadline deadline = Deadline::Infinite().WithCancelFlag(flag);
  EXPECT_FALSE(deadline.Expired());
  flag->store(true);
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, CancelFlagSurvivesCopies) {
  auto flag = std::make_shared<std::atomic<bool>>(false);
  Deadline original = Deadline::After(60.0).WithCancelFlag(flag);
  Deadline copy = original;  // options structs copy deadlines around
  flag->store(true);
  EXPECT_TRUE(copy.Expired());
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace valmod
