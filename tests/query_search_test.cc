// Tests for query-by-content search over MASS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mass/query_search.h"
#include "series/generators.h"

namespace valmod::mass {
namespace {

TEST(QuerySearchTest, FindsPlantedOccurrences) {
  synth::PlantedMotifOptions plant;
  plant.length = 6000;
  plant.seed = 31;
  plant.motif_length = 100;
  plant.occurrences = 4;
  plant.occurrence_noise = 0.02;
  auto planted = synth::PlantedMotif(plant);
  ASSERT_TRUE(planted.ok());

  // Query with the first planted occurrence; the other three must be among
  // the top four matches (the first match is the query's own location).
  auto query =
      planted->series.Subsequence(planted->motif_offsets[0], 100);
  ASSERT_TRUE(query.ok());
  QuerySearchOptions options;
  options.k = 4;
  auto matches = FindQueryMatches(planted->series, *query, options);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 4u);
  EXPECT_EQ((*matches)[0].offset,
            static_cast<int64_t>(planted->motif_offsets[0]));
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-5);

  for (std::size_t occurrence : planted->motif_offsets) {
    bool found = false;
    for (const QueryMatch& m : *matches) {
      if (std::llabs(m.offset - static_cast<int64_t>(occurrence)) <= 4) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "occurrence at " << occurrence;
  }
}

TEST(QuerySearchTest, MatchesAreOrderedAndSeparated) {
  auto series = synth::ByName("sine", 2000, 33);
  ASSERT_TRUE(series.ok());
  auto query = series->Subsequence(100, 60);
  ASSERT_TRUE(query.ok());
  QuerySearchOptions options;
  options.k = 8;
  auto matches = FindQueryMatches(*series, *query, options);
  ASSERT_TRUE(matches.ok());
  ASSERT_GE(matches->size(), 2u);
  for (std::size_t i = 1; i < matches->size(); ++i) {
    EXPECT_LE((*matches)[i - 1].distance, (*matches)[i].distance + 1e-12);
  }
  for (std::size_t a = 0; a < matches->size(); ++a) {
    for (std::size_t b = a + 1; b < matches->size(); ++b) {
      EXPECT_GE(std::llabs((*matches)[a].offset - (*matches)[b].offset), 30);
    }
  }
}

TEST(QuerySearchTest, ZeroExclusionAllowsAdjacentMatches) {
  auto series = synth::ByName("sine", 500, 35);
  ASSERT_TRUE(series.ok());
  auto query = series->Subsequence(0, 40);
  ASSERT_TRUE(query.ok());
  QuerySearchOptions options;
  options.k = 5;
  options.exclusion_fraction = 0.0;
  auto matches = FindQueryMatches(*series, *query, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 5u);
}

TEST(QuerySearchTest, ExternalQueryWorks) {
  auto series = synth::ByName("random_walk", 800, 37);
  ASSERT_TRUE(series.ok());
  std::vector<double> external = {0.0, 1.0, 2.0, 1.0, 0.0, -1.0, -2.0, -1.0};
  auto matches = FindQueryMatches(*series, external, {});
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_GE((*matches)[0].offset, 0);
}

TEST(QuerySearchTest, ValidatesArguments) {
  auto series = synth::ByName("random_walk", 100, 39);
  ASSERT_TRUE(series.ok());
  QuerySearchOptions zero_k;
  zero_k.k = 0;
  std::vector<double> query(10, 1.0);
  EXPECT_FALSE(FindQueryMatches(*series, query, zero_k).ok());
  EXPECT_FALSE(FindQueryMatches(*series, {}, {}).ok());
  std::vector<double> too_long(200, 1.0);
  EXPECT_FALSE(FindQueryMatches(*series, too_long, {}).ok());
}

}  // namespace
}  // namespace valmod::mass
