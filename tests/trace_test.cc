// Tests for the request-tracing primitives: span trees and nesting via the
// thread-local binding, propagation across ThreadPool fan-out, the span
// cap, trace-id formatting, and the disabled/unbound no-op paths.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace valmod::trace {
namespace {

TEST(TraceContextTest, RecordsSpansWithParentsAndDurations) {
  TraceContext context;
  const int root = context.BeginSpan("request", -1);
  ASSERT_EQ(root, 0);
  const int child = context.BeginSpan("parse", root);
  ASSERT_EQ(child, 1);
  context.EndSpan(child);
  context.EndSpan(root);

  const auto spans = context.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "parse");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_GT(spans[0].duration_ns, 0u);
  // The child closed before its parent, so it cannot outlast it.
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  EXPECT_EQ(context.dropped(), 0u);
}

TEST(TraceContextTest, OpenSpanReportsZeroDurationAndDoubleEndKeepsFirst) {
  TraceContext context;
  const int span = context.BeginSpan("open", -1);
  EXPECT_EQ(context.Snapshot()[0].duration_ns, 0u);
  context.EndSpan(span);
  const std::uint64_t first = context.Snapshot()[0].duration_ns;
  EXPECT_GT(first, 0u);
  context.EndSpan(span);  // second close must not extend the duration
  EXPECT_EQ(context.Snapshot()[0].duration_ns, first);
  context.EndSpan(-1);  // ignored, mirrors a capacity-refused BeginSpan
}

TEST(TraceContextTest, CapsSpansAndCountsDrops) {
  TraceContext context;
  for (int i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    const int index = context.BeginSpan("s", -1);
    if (i < TraceContext::kMaxSpans) {
      EXPECT_GE(index, 0);
    } else {
      EXPECT_EQ(index, -1);
    }
    context.EndSpan(index);
  }
  EXPECT_EQ(context.Snapshot().size(),
            static_cast<std::size_t>(TraceContext::kMaxSpans));
  EXPECT_EQ(context.dropped(), 10u);
}

TEST(TraceContextTest, TraceIdsAreDistinctAndHexFormatted) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    TraceContext context;
    ids.insert(context.trace_id());
  }
  // Collisions in 64 draws from a 64-bit id space mean a broken generator.
  EXPECT_EQ(ids.size(), 64u);

  const std::string hex = TraceIdHex(0x0123456789abcdefULL);
  EXPECT_EQ(hex, "0123456789abcdef");
  EXPECT_EQ(TraceIdHex(0).size(), 16u);
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
}

TEST(TraceSpanTest, NestsLexicallyThroughTheThreadBinding) {
  TraceContext context;
  const int root = context.BeginSpan("request", -1);
  {
    const ScopedBinding bind(Binding{&context, root});
    const TraceSpan outer("outer");
    { const TraceSpan inner("inner"); }
  }
  context.EndSpan(root);

  const auto spans = context.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].parent, 1);  // nested under outer, not the root
}

TEST(TraceSpanTest, UnboundSpansAreNoOps) {
  // No binding installed: spans must not crash and must record nothing.
  const TraceSpan span("orphan");
  TraceContext context;
  {
    const ScopedBinding bind(Binding{&context, -1});
  }  // binding restored before the span below
  { const TraceSpan after("after"); }
  EXPECT_TRUE(context.Snapshot().empty());
}

TEST(TraceSpanTest, ScopedBindingRestoresThePreviousBinding) {
  TraceContext a;
  TraceContext b;
  const ScopedBinding bind_a(Binding{&a, -1});
  {
    const ScopedBinding bind_b(Binding{&b, -1});
    const TraceSpan span("in_b");
  }
  const TraceSpan span("in_a");
  EXPECT_EQ(b.Snapshot().size(), 1u);
  ASSERT_EQ(a.Snapshot().size(), 1u);
  EXPECT_EQ(a.Snapshot()[0].name, "in_a");
}

TEST(TraceSpanTest, PropagatesAcrossThreadPoolFanOut) {
  TraceContext context;
  const int root = context.BeginSpan("request", -1);
  {
    const ScopedBinding bind(Binding{&context, root});
    // Enough chunks that some run on pool workers, not just the caller.
    ParallelFor(0, 16, /*threads=*/4, [&](std::size_t) {
      const TraceSpan span("chunk");
    });
  }
  context.EndSpan(root);

  const auto spans = context.Snapshot();
  ASSERT_EQ(spans.size(), 17u);  // root + one span per chunk
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, "chunk");
    EXPECT_EQ(spans[i].parent, 0);  // all parented under the bound root
  }
}

TEST(TraceContextTest, ConcurrentSpansFromManyThreadsAreAllRecorded) {
  TraceContext context;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const int span = context.BeginSpan("worker", -1);
        context.EndSpan(span);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(context.Snapshot().size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(context.dropped(), 0u);
}

TEST(TraceEnabledTest, KillSwitchRoundTrips) {
  const bool initial = Enabled();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(initial);
}

}  // namespace
}  // namespace valmod::trace
