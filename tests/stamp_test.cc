// Tests for STAMP: agreement with STOMP (independent inner loops) and with
// the brute-force ground truth.

#include <gtest/gtest.h>

#include <string>

#include "common/timer.h"
#include "mass/engine.h"
#include "mp/brute_force.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

struct StampCase {
  std::string generator;
  std::size_t n;
  std::size_t length;
};

class StampTest : public ::testing::TestWithParam<StampCase> {};

TEST_P(StampTest, MatchesBruteForce) {
  const StampCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 41);
  ASSERT_TRUE(series.ok());
  auto stamp = ComputeStamp(*series, c.length, {});
  auto brute = ComputeBruteForce(*series, c.length, {});
  ASSERT_TRUE(stamp.ok());
  ASSERT_TRUE(brute.ok());
  ASSERT_EQ(stamp->size(), brute->size());
  for (std::size_t i = 0; i < brute->size(); ++i) {
    EXPECT_NEAR(stamp->distances[i], brute->distances[i], 2e-6) << i;
  }
}

TEST_P(StampTest, AgreesWithStomp) {
  const StampCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 43);
  ASSERT_TRUE(series.ok());
  auto stamp = ComputeStamp(*series, c.length, {});
  auto stomp = ComputeStomp(*series, c.length, {});
  ASSERT_TRUE(stamp.ok());
  ASSERT_TRUE(stomp.ok());
  for (std::size_t i = 0; i < stamp->size(); ++i) {
    EXPECT_NEAR(stamp->distances[i], stomp->distances[i], 2e-6) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StampTest,
                         ::testing::Values(StampCase{"random_walk", 250, 25},
                                           StampCase{"sine", 300, 30},
                                           StampCase{"ecg", 350, 40}));

// STAMP fans row chunks across the thread pool; the chunking and the
// engine's row pairing depend only on the (fixed) row order, so the profile
// must be bit-identical across thread counts — on both sides of the MASS
// cost-model crossover (direct products for short windows, pair-packed FFT
// for long ones).
TEST(StampThreadingTest, ThreadCountDoesNotChangeOutputDirectPath) {
  auto series = synth::ByName("ecg", 700, 47);
  ASSERT_TRUE(series.ok());
  ProfileOptions serial;
  serial.num_threads = 1;
  ProfileOptions threaded;
  threaded.num_threads = 4;
  auto a = ComputeStamp(*series, 40, serial);
  auto b = ComputeStamp(*series, 40, threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->distances[i], b->distances[i]) << i;
    EXPECT_EQ(a->indices[i], b->indices[i]) << i;
  }
}

TEST(StampThreadingTest, ThreadCountDoesNotChangeOutputFftPath) {
  // 2048 points at length 1024 sits past the cost-model crossover, so rows
  // run through the pair-packed FFT path.
  auto series = synth::ByName("random_walk", 2048, 49);
  ASSERT_TRUE(series.ok());
  ProfileOptions serial;
  serial.num_threads = 1;
  ProfileOptions threaded;
  threaded.num_threads = 4;
  auto a = ComputeStamp(*series, 1024, serial);
  auto b = ComputeStamp(*series, 1024, threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->distances[i], b->distances[i]) << i;
    EXPECT_EQ(a->indices[i], b->indices[i]) << i;
  }
  // And the FFT-path profile must still agree with STOMP's independently
  // derived profile.
  auto stomp = ComputeStomp(*series, 1024, {});
  ASSERT_TRUE(stomp.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR(a->distances[i], stomp->distances[i], 2e-6) << i;
  }
}

// The engine-reusing overload is the serving layer's path (a dataset
// snapshot's long-lived engine): it must be bit-identical to the
// series-taking form, and one warm engine must serve several lengths and
// repeated calls without drift.
TEST(StampEngineOverloadTest, SharedEngineIsBitIdenticalToFreshEngine) {
  auto series = synth::ByName("ecg", 600, 53);
  ASSERT_TRUE(series.ok());
  mass::MassEngine engine(*series);
  for (std::size_t length : {32u, 48u, 64u}) {
    auto fresh = ComputeStamp(*series, length, {});
    auto shared = ComputeStamp(engine, length, {});
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(shared.ok());
    ASSERT_EQ(fresh->size(), shared->size());
    for (std::size_t i = 0; i < fresh->size(); ++i) {
      EXPECT_EQ(fresh->distances[i], shared->distances[i])
          << "l=" << length << " i=" << i;
      EXPECT_EQ(fresh->indices[i], shared->indices[i])
          << "l=" << length << " i=" << i;
    }
  }
  // A second pass through the (now fully warm) engine changes nothing.
  auto again = ComputeStamp(engine, 48, {});
  auto reference = ComputeStamp(*series, 48, {});
  ASSERT_TRUE(again.ok() && reference.ok());
  for (std::size_t i = 0; i < again->size(); ++i) {
    EXPECT_EQ(again->distances[i], reference->distances[i]) << i;
  }
}

TEST(StampEngineOverloadTest, EngineOverloadValidatesLength) {
  auto series = synth::ByName("sine", 128, 3);
  ASSERT_TRUE(series.ok());
  mass::MassEngine engine(*series);
  EXPECT_EQ(ComputeStamp(engine, 500, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StampDeadlineTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 2000, 5);
  ASSERT_TRUE(series.ok());
  ProfileOptions options;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(ComputeStamp(*series, 50, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::mp
