// Tests for STAMP: agreement with STOMP (independent inner loops) and with
// the brute-force ground truth.

#include <gtest/gtest.h>

#include <string>

#include "common/timer.h"
#include "mp/brute_force.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

struct StampCase {
  std::string generator;
  std::size_t n;
  std::size_t length;
};

class StampTest : public ::testing::TestWithParam<StampCase> {};

TEST_P(StampTest, MatchesBruteForce) {
  const StampCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 41);
  ASSERT_TRUE(series.ok());
  auto stamp = ComputeStamp(*series, c.length, {});
  auto brute = ComputeBruteForce(*series, c.length, {});
  ASSERT_TRUE(stamp.ok());
  ASSERT_TRUE(brute.ok());
  ASSERT_EQ(stamp->size(), brute->size());
  for (std::size_t i = 0; i < brute->size(); ++i) {
    EXPECT_NEAR(stamp->distances[i], brute->distances[i], 2e-6) << i;
  }
}

TEST_P(StampTest, AgreesWithStomp) {
  const StampCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 43);
  ASSERT_TRUE(series.ok());
  auto stamp = ComputeStamp(*series, c.length, {});
  auto stomp = ComputeStomp(*series, c.length, {});
  ASSERT_TRUE(stamp.ok());
  ASSERT_TRUE(stomp.ok());
  for (std::size_t i = 0; i < stamp->size(); ++i) {
    EXPECT_NEAR(stamp->distances[i], stomp->distances[i], 2e-6) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StampTest,
                         ::testing::Values(StampCase{"random_walk", 250, 25},
                                           StampCase{"sine", 300, 30},
                                           StampCase{"ecg", 350, 40}));

TEST(StampDeadlineTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 2000, 5);
  ASSERT_TRUE(series.ok());
  ProfileOptions options;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(ComputeStamp(*series, 50, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::mp
