// Event-loop transport tests over real sockets: round trips and shutdown
// drain through both TCP front ends (epoll and the legacy thread-per-
// connection one), client-side reassembly of paged responses, pipelined
// out-of-order completion, and the incremental request-line cap.

#include "service/tcp_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/json.h"
#include "service/client.h"
#include "service/server.h"

namespace valmod::service {
namespace {

using json::Value;

/// A Service plus a TCP front end serving it on an ephemeral port from a
/// background thread. The destructor shuts the server down (through the
/// protocol, like a real client would) so a failed assertion never leaves
/// a test hanging on join().
struct ServerHarness {
  explicit ServerHarness(const ServiceOptions& options,
                         bool threaded = false,
                         const TcpServerOptions& tcp = {})
      : service(options) {
    auto made = threaded ? MakeThreadedServer(service, tcp)
                         : MakeEpollServer(service, tcp);
    if (!made.ok()) {
      ADD_FAILURE() << made.status().ToString();
      return;
    }
    server = std::move(*made);
    serve_thread = std::thread([this] { exit_code = server->Serve(); });
  }

  ~ServerHarness() { Stop(); }

  void Stop() {
    if (!serve_thread.joinable()) return;
    if (!service.shutdown_requested()) {
      TcpTransport transport(server->port());
      (void)transport.RoundTrip(R"({"verb":"shutdown"})");
    }
    serve_thread.join();
  }

  int port() const { return server->port(); }

  Service service;
  std::unique_ptr<TcpServer> server;
  std::thread serve_thread;
  int exit_code = -1;
};

constexpr char kLoad[] =
    R"({"id":1,"verb":"load","dataset":"d",)"
    R"("params":{"generator":"sine","n":4096,"seed":7}})";
constexpr char kMotifs[] =
    R"({"id":2,"verb":"motifs","dataset":"d",)"
    R"("params":{"lmin":64,"lmax":66,"k":1}})";
constexpr char kProfile[] =
    R"({"id":3,"verb":"profile","dataset":"d","params":{"l":64}})";

void SmokeSession(int port) {
  TcpTransport transport(port);
  RetryClient client(transport);

  auto load = client.Call(kLoad);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  ASSERT_TRUE(load->GetBool("ok", false)) << load->Serialize();

  auto miss = client.Call(kMotifs);
  ASSERT_TRUE(miss.ok() && miss->GetBool("ok", false));
  EXPECT_FALSE(miss->GetBool("cached", true));
  auto hit = client.Call(kMotifs);
  ASSERT_TRUE(hit.ok() && hit->GetBool("ok", false));
  EXPECT_TRUE(hit->GetBool("cached", false));
  EXPECT_EQ(hit->Find("result")->Serialize(),
            miss->Find("result")->Serialize());

  // The stats verb must expose the per-verb latency panel.
  auto stats = client.Call(R"({"id":4,"verb":"stats"})");
  ASSERT_TRUE(stats.ok() && stats->GetBool("ok", false));
  const Value* verbs = stats->Find("result")->Find("verbs");
  ASSERT_NE(verbs, nullptr) << stats->Serialize();
  bool saw_motifs = false;
  for (const Value& verb : verbs->AsArray()) {
    if (verb.GetString("verb", "") != "motifs") continue;
    saw_motifs = true;
    EXPECT_EQ(verb.GetNumber("count", 0), 2.0);
    EXPECT_GT(verb.GetNumber("p50_ms", -1.0), 0.0);
    EXPECT_GE(verb.GetNumber("p99_ms", 0.0), verb.GetNumber("p50_ms", 0.0));
    EXPECT_GE(verb.GetNumber("mean_ms", -1.0), 0.0);
  }
  EXPECT_TRUE(saw_motifs) << stats->Serialize();
}

TEST(EpollServerTest, RoundTripsAndCleanShutdown) {
  ServerHarness harness(ServiceOptions{});
  ASSERT_NE(harness.server, nullptr);
  SmokeSession(harness.port());
  harness.Stop();
  EXPECT_EQ(harness.exit_code, 0);
}

TEST(ThreadedServerTest, RoundTripsAndCleanShutdown) {
  ServerHarness harness(ServiceOptions{}, /*threaded=*/true);
  ASSERT_NE(harness.server, nullptr);
  SmokeSession(harness.port());
  harness.Stop();
  EXPECT_EQ(harness.exit_code, 0);
}

/// The client must reassemble a paged profile into the same bytes an
/// unpaged (legacy) response carries, on both transports.
void PagedReassemblySession(ServerHarness& harness) {
  TcpTransport transport(harness.port());
  RetryClient client(transport);
  ASSERT_TRUE(client.Call(kLoad)->GetBool("ok", false));

  auto paged = client.Call(kProfile);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_TRUE(paged->GetBool("ok", false)) << paged->Serialize();
  EXPECT_GT(client.stats().pages, 0u)
      << "a ~4000-point profile at page_bytes=2048 must page";
  // The paging bookkeeping never leaks into the reassembled object.
  EXPECT_EQ(paged->Find("chunk"), nullptr);
  EXPECT_EQ(paged->Find("seq"), nullptr);
  EXPECT_EQ(paged->Find("partial"), nullptr);

  // HandleRequestLine never pages; same request is now a cache hit, so
  // the result bytes must match the reassembled ones exactly.
  auto unpaged = json::Parse(harness.service.HandleRequestLine(kProfile));
  ASSERT_TRUE(unpaged.ok() && unpaged->GetBool("ok", false));
  EXPECT_TRUE(unpaged->GetBool("cached", false));
  EXPECT_EQ(paged->Find("result")->Serialize(),
            unpaged->Find("result")->Serialize());
}

TEST(EpollServerTest, PagedResponseReassembledByClient) {
  ServiceOptions options;
  options.page_bytes = 2048;
  ServerHarness harness(options);
  ASSERT_NE(harness.server, nullptr);
  PagedReassemblySession(harness);
}

TEST(ThreadedServerTest, PagedResponseReassembledByClient) {
  ServiceOptions options;
  options.page_bytes = 2048;
  ServerHarness harness(options, /*threaded=*/true);
  ASSERT_NE(harness.server, nullptr);
  PagedReassemblySession(harness);
}

// A pipelined connection on the epoll transport completes independent
// requests out of order: a slow compute must not block the cheap admin
// verb sent right behind it on the same connection.
TEST(EpollServerTest, PipelinedRequestsCompleteOutOfOrder) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  fault::FaultInjector::Global().DisarmAll();
  ServerHarness harness(ServiceOptions{});
  ASSERT_NE(harness.server, nullptr);
  TcpTransport transport(harness.port());
  RetryClient client(transport);
  ASSERT_TRUE(client.Call(kLoad)->GetBool("ok", false));

  fault::FaultSpec slow;
  slow.kind = fault::FaultKind::kDelay;
  slow.delay_ms = 300;
  fault::FaultInjector::Global().Arm("server.query.compute", slow);

  // Two requests in one write: the embedded newline pipelines them.
  const std::string pipelined = std::string(kMotifs) + "\n" +
                                R"({"id":9,"verb":"stats"})";
  auto first = transport.RoundTrip(pipelined);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto first_parsed = json::Parse(*first);
  ASSERT_TRUE(first_parsed.ok());
  EXPECT_EQ(first_parsed->GetNumber("id", -1), 9.0)
      << "the cheap stats response must overtake the stalled compute: "
      << *first;
  auto second = transport.ReceiveLine();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto second_parsed = json::Parse(*second);
  ASSERT_TRUE(second_parsed.ok());
  EXPECT_EQ(second_parsed->GetNumber("id", -1), 2.0);
  EXPECT_TRUE(second_parsed->GetBool("ok", false)) << *second;
  fault::FaultInjector::Global().DisarmAll();
}

// The 32 MiB request-line cap is enforced incrementally: a connection
// streaming an unterminated line is cut off once it crosses the cap —
// the server must not buffer until the process dies.
TEST(EpollServerTest, OversizedRequestLineIsRejected) {
  ServerHarness harness(ServiceOptions{});
  ASSERT_NE(harness.server, nullptr);
  TcpTransport transport(harness.port());
  std::string huge(kMaxRequestLineBytes + 1, 'x');
  auto response = transport.RoundTrip(huge);
  if (response.ok()) {
    // The error response raced ahead of the connection teardown.
    auto parsed = json::Parse(*response);
    ASSERT_TRUE(parsed.ok()) << *response;
    EXPECT_FALSE(parsed->GetBool("ok", true)) << *response;
  } else {
    // The server dropped the connection mid-send: also a correct outcome,
    // and the one a real flood usually sees.
    EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  }
  // The server survives and serves the next well-formed connection.
  TcpTransport fresh(harness.port());
  RetryClient client(fresh);
  auto stats = client.Call(R"({"verb":"stats"})");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->GetBool("ok", false));
}

// An injected read failure (server.read) kills that one connection; the
// listener and every other connection keep serving.
TEST(EpollServerTest, InjectedReadFaultDropsOnlyThatConnection) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  fault::FaultInjector::Global().DisarmAll();
  ServerHarness harness(ServiceOptions{});
  ASSERT_NE(harness.server, nullptr);

  fault::FaultSpec read_fault;
  read_fault.kind = fault::FaultKind::kError;
  read_fault.code = StatusCode::kIoError;
  read_fault.nth = 1;
  read_fault.max_fires = 1;
  fault::FaultInjector::Global().Arm("server.read", read_fault);

  TcpTransport doomed(harness.port());
  RetryOptions no_retry;
  no_retry.max_attempts = 1;
  no_retry.retry_io_errors = false;
  RetryClient doomed_client(doomed, no_retry);
  auto dropped = doomed_client.Call(R"({"verb":"stats"})");
  EXPECT_FALSE(dropped.ok());

  TcpTransport survivor(harness.port());
  RetryClient client(survivor);
  auto stats = client.Call(R"({"verb":"stats"})");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->GetBool("ok", false));
  fault::FaultInjector::Global().DisarmAll();
}

}  // namespace
}  // namespace valmod::service
