// Tests for MASS: the FFT distance-profile path against the brute-force
// definitional path, across workload shapes and window placements.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "mass/mass.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::mass {
namespace {

using series::DataSeries;

struct MassCase {
  std::string generator;
  std::size_t n;
  std::size_t length;
};

class MassProfileTest : public ::testing::TestWithParam<MassCase> {};

TEST_P(MassProfileTest, RowProfileMatchesBruteForce) {
  const MassCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 7);
  ASSERT_TRUE(series.ok());

  for (std::size_t offset :
       {std::size_t{0}, c.n / 3, c.n - c.length}) {
    auto row = ComputeRowProfile(*series, offset, c.length);
    ASSERT_TRUE(row.ok());
    auto query = series->Subsequence(offset, c.length);
    ASSERT_TRUE(query.ok());
    auto brute = BruteDistanceProfile(*series, *query);
    ASSERT_TRUE(brute.ok());
    ASSERT_EQ(row->distances.size(), brute->size());
    // Tolerance note: FFT rounding enters at the squared-distance level
    // (~1e-11), which sqrt amplifies to ~1e-5 near zero distances.
    for (std::size_t j = 0; j < brute->size(); ++j) {
      EXPECT_NEAR(row->distances[j], (*brute)[j], 1e-5)
          << "offset=" << offset << " j=" << j;
    }
  }
}

TEST_P(MassProfileTest, SelfDistanceIsZero) {
  const MassCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 11);
  ASSERT_TRUE(series.ok());
  const std::size_t offset = c.n / 2;
  auto row = ComputeRowProfile(*series, offset, c.length);
  ASSERT_TRUE(row.ok());
  // Same sqrt-amplified FFT rounding note as above.
  EXPECT_NEAR(row->distances[offset], 0.0, 1e-5);
}

TEST_P(MassProfileTest, DotsMatchDirectProducts) {
  const MassCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 13);
  ASSERT_TRUE(series.ok());
  const std::size_t offset = c.n / 4;
  auto row = ComputeRowProfile(*series, offset, c.length);
  ASSERT_TRUE(row.ok());
  const auto centered = series->centered();
  for (std::size_t j = 0; j < row->dots.size(); j += 17) {
    double expected = 0.0;
    for (std::size_t t = 0; t < c.length; ++t) {
      expected += centered[offset + t] * centered[j + t];
    }
    EXPECT_NEAR(row->dots[j], expected, 1e-6 * (1.0 + std::abs(expected)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MassProfileTest,
    ::testing::Values(MassCase{"random_walk", 400, 20},
                      MassCase{"random_walk", 512, 64},
                      MassCase{"sine", 600, 50},
                      MassCase{"ecg", 800, 40},
                      MassCase{"astro", 500, 25},
                      MassCase{"entomology", 700, 30}));

TEST(MassTest, ExternalQueryMatchesBrute) {
  auto series = synth::ByName("random_walk", 300, 3);
  ASSERT_TRUE(series.ok());
  // A query that is not a subsequence of the series.
  auto other = synth::ByName("sine", 40, 4);
  ASSERT_TRUE(other.ok());
  std::vector<double> query(other->values().begin(), other->values().end());

  auto fft_profile = DistanceProfile(*series, query);
  auto brute = BruteDistanceProfile(*series, query);
  ASSERT_TRUE(fft_profile.ok());
  ASSERT_TRUE(brute.ok());
  ASSERT_EQ(fft_profile->size(), brute->size());
  for (std::size_t j = 0; j < brute->size(); ++j) {
    EXPECT_NEAR((*fft_profile)[j], (*brute)[j], 2e-6);
  }
}

TEST(MassTest, ConstantQueryConvention) {
  auto series = synth::ByName("random_walk", 200, 5);
  ASSERT_TRUE(series.ok());
  std::vector<double> query(25, 7.0);
  auto profile = DistanceProfile(*series, query);
  ASSERT_TRUE(profile.ok());
  // Every non-constant window sits at sqrt(l) from a constant query.
  for (double d : *profile) {
    EXPECT_NEAR(d, 5.0, 1e-9);
  }
}

TEST(MassTest, ConstantRegionInSeries) {
  std::vector<double> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i) * 0.1);
  }
  for (std::size_t i = 100; i < 160; ++i) data[i] = 2.0;
  auto series = DataSeries::Create(data);
  ASSERT_TRUE(series.ok());
  auto row = ComputeRowProfile(*series, 110, 30);  // constant query window
  ASSERT_TRUE(row.ok());
  EXPECT_NEAR(row->distances[120], 0.0, 1e-9);      // another constant window
  EXPECT_NEAR(row->distances[0], std::sqrt(30.0), 1e-9);  // non-constant
}

TEST(MassTest, ValidatesArguments) {
  auto series = synth::ByName("random_walk", 50, 1);
  ASSERT_TRUE(series.ok());
  EXPECT_FALSE(ComputeRowProfile(*series, 0, 0).ok());
  EXPECT_FALSE(ComputeRowProfile(*series, 45, 10).ok());
  EXPECT_FALSE(DistanceProfile(*series, {}).ok());
  std::vector<double> long_query(60, 1.0);
  EXPECT_FALSE(DistanceProfile(*series, long_query).ok());
}

TEST(ExclusionZoneTest, MasksExpectedRange) {
  std::vector<double> distances(10, 1.0);
  ApplyExclusionZone(&distances, 5, 2);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < 10; ++j) {
    if (j >= 4 && j <= 6) {
      EXPECT_EQ(distances[j], inf) << j;
    } else {
      EXPECT_EQ(distances[j], 1.0) << j;
    }
  }
}

TEST(ExclusionZoneTest, ClampsAtBoundaries) {
  std::vector<double> distances(5, 1.0);
  ApplyExclusionZone(&distances, 0, 3);
  EXPECT_TRUE(std::isinf(distances[0]));
  EXPECT_TRUE(std::isinf(distances[2]));
  EXPECT_DOUBLE_EQ(distances[3], 1.0);

  std::vector<double> tail(5, 1.0);
  ApplyExclusionZone(&tail, 4, 3);
  EXPECT_DOUBLE_EQ(tail[1], 1.0);
  EXPECT_TRUE(std::isinf(tail[2]));
  EXPECT_TRUE(std::isinf(tail[4]));
}

TEST(ExclusionZoneTest, ZeroExclusionIsNoOp) {
  std::vector<double> distances(5, 1.0);
  ApplyExclusionZone(&distances, 2, 0);
  for (double d : distances) EXPECT_DOUBLE_EQ(d, 1.0);
}

}  // namespace
}  // namespace valmod::mass
