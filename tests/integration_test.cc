// End-to-end scenarios mirroring the paper's demonstrations: the Figure 1
// ECG walkthrough (fixed-length vs variable-length insight), the seismic
// detection workflow, and cross-algorithm agreement on one realistic run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "baselines/moen.h"
#include "baselines/stomp_range.h"
#include "core/motif_set.h"
#include "core/valmod.h"
#include "mp/discord.h"
#include "mp/motif.h"
#include "mp/stomp.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod {
namespace {

TEST(IntegrationTest, EcgValmapWorkflowFindsLongerBeat) {
  // Paper Figure 1: at a short fixed length the motif is a beat fragment; a
  // range search must also surface full-beat-scale matches, visible as
  // VALMAP length-profile entries well above the minimum length.
  synth::EcgOptions ecg;
  ecg.length = 5000;
  ecg.seed = 100;
  ecg.samples_per_beat = 400.0;
  auto series = synth::Ecg(ecg);
  ASSERT_TRUE(series.ok());

  core::ValmodOptions options;
  options.min_length = 50;
  options.max_length = 400;
  options.k = 4;
  options.num_threads = 4;
  auto result = core::RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  // Quasi-periodic signal: top pairs at every length should be close.
  ASSERT_FALSE(result->ranked.empty());
  EXPECT_LT(result->ranked[0].normalized_distance, 0.5);

  // Some subsequences must prefer a longer-length match (VALMAP updates at
  // lengths beyond lmin — the paper's "same event lasting longer" signal).
  std::size_t longer = 0;
  for (std::size_t l : result->valmap.length_profile()) {
    if (l >= 100) ++longer;
  }
  EXPECT_GT(longer, 0u);

  // And the updates must be replayable per length (the GUI slider).
  std::size_t total_updates = 0;
  for (std::size_t l = options.min_length; l <= options.max_length; ++l) {
    total_updates += result->valmap.UpdatesForLength(l).size();
  }
  EXPECT_EQ(total_updates, result->valmap.updates().size());
}

TEST(IntegrationTest, SeismicEventsDetectedViaMotifSets) {
  // Repeated earthquake waveforms are motifs; expanding the best pair must
  // recover most of the inserted events.
  synth::SeismicOptions seismic;
  seismic.length = 20000;
  seismic.seed = 101;
  seismic.expected_events = 10.0;
  seismic.event_duration = 300.0;
  seismic.event_jitter = 0.05;
  auto generated = synth::Seismic(seismic);
  ASSERT_TRUE(generated.ok());
  ASSERT_GE(generated->event_onsets.size(), 4u);

  core::ValmodOptions options;
  options.min_length = 150;
  options.max_length = 150;  // fixed length for speed; events span ~300
  options.num_threads = 4;
  auto result = core::RunValmod(generated->series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->per_length[0].motifs.empty());

  core::MotifSetOptions set_options;
  set_options.radius_factor = 2.5;
  auto set = core::ExpandMotifSet(generated->series,
                                  result->per_length[0].motifs[0],
                                  set_options);
  ASSERT_TRUE(set.ok());

  std::size_t hits = 0;
  for (std::size_t onset : generated->event_onsets) {
    for (const core::MotifSetMember& member : set->members) {
      if (std::llabs(member.offset - static_cast<int64_t>(onset)) <= 120) {
        ++hits;
        break;
      }
    }
  }
  // Most events recovered (some may fall off the edge or overlap).
  EXPECT_GE(hits * 2, generated->event_onsets.size());
}

TEST(IntegrationTest, AlgorithmsAgreeOnEntomologyRange) {
  auto series = synth::ByName("entomology", 1200, 102);
  ASSERT_TRUE(series.ok());
  const std::size_t lmin = 30, lmax = 60;

  core::ValmodOptions valmod_options;
  valmod_options.min_length = lmin;
  valmod_options.max_length = lmax;
  auto valmod_result = core::RunValmod(*series, valmod_options);
  ASSERT_TRUE(valmod_result.ok());

  baselines::StompRangeOptions stomp_options;
  stomp_options.min_length = lmin;
  stomp_options.max_length = lmax;
  auto stomp_result = baselines::RunStompRange(*series, stomp_options);
  ASSERT_TRUE(stomp_result.ok());

  baselines::MoenOptions moen_options;
  moen_options.min_length = lmin;
  moen_options.max_length = lmax;
  auto moen_result = baselines::RunMoen(*series, moen_options);
  ASSERT_TRUE(moen_result.ok());

  for (std::size_t i = 0; i <= lmax - lmin; ++i) {
    ASSERT_FALSE((*stomp_result)[i].motifs.empty());
    const double expected = (*stomp_result)[i].motifs[0].distance;
    EXPECT_NEAR(valmod_result->per_length[i].motifs[0].distance, expected,
                2e-5)
        << "VALMOD at length " << lmin + i;
    EXPECT_NEAR((*moen_result)[i].motifs[0].distance, expected, 2e-5)
        << "MOEN at length " << lmin + i;
  }
}

TEST(IntegrationTest, FixedLengthShortcutsMatchFullStack) {
  // Running VALMOD with lmin == lmax is the advertised way to get plain
  // fixed-length results; motifs + discords must match the mp-layer outputs.
  auto series = synth::ByName("astro", 900, 103);
  ASSERT_TRUE(series.ok());

  core::ValmodOptions options;
  options.min_length = 45;
  options.max_length = 45;
  options.k = 3;
  auto result = core::RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  auto profile = mp::ComputeStomp(*series, 45, {});
  ASSERT_TRUE(profile.ok());
  auto motifs = mp::ExtractTopKMotifs(*profile, 3);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(result->per_length[0].motifs.size(), motifs->size());
  for (std::size_t m = 0; m < motifs->size(); ++m) {
    EXPECT_NEAR(result->per_length[0].motifs[m].distance,
                (*motifs)[m].distance, 1e-9);
  }

  auto discords = mp::ExtractTopKDiscords(*profile, 2);
  ASSERT_TRUE(discords.ok());
  EXPECT_FALSE(discords->empty());
}

TEST(IntegrationTest, PrefixScalingWorkflow) {
  // The Figure-3-bottom workload unit: run the same range over growing
  // prefixes; results at each prefix must be internally consistent.
  auto full = synth::ByName("ecg", 2000, 104);
  ASSERT_TRUE(full.ok());
  for (std::size_t prefix_size : {500u, 1000u, 2000u}) {
    auto prefix = full->Prefix(prefix_size);
    ASSERT_TRUE(prefix.ok());
    core::ValmodOptions options;
    options.min_length = 40;
    options.max_length = 60;
    auto result = core::RunValmod(*prefix, options);
    ASSERT_TRUE(result.ok()) << "prefix " << prefix_size;
    ASSERT_EQ(result->per_length.size(), 21u);
    for (const auto& lm : result->per_length) {
      ASSERT_FALSE(lm.motifs.empty());
      EXPECT_LT(static_cast<std::size_t>(lm.motifs[0].offset_b) + lm.length,
                prefix_size + 1);
    }
  }
}

TEST(IntegrationTest, RankedCrossLengthOrderFavorsLongerCloseMatches) {
  // Two planted motifs: a short noisy one and a long clean one. The long
  // clean pattern must win the length-normalized ranking.
  synth::PlantedMotifOptions plant;
  plant.length = 12000;
  plant.seed = 105;
  plant.motif_length = 400;
  plant.occurrences = 2;
  plant.occurrence_noise = 0.01;
  auto planted = synth::PlantedMotif(plant);
  ASSERT_TRUE(planted.ok());

  core::ValmodOptions options;
  options.min_length = 100;
  options.max_length = 400;
  options.num_threads = 4;
  auto result = core::RunValmod(planted->series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->ranked.empty());

  // The top-ranked motif should sit at (or near) the planted long pattern.
  const mp::MotifPair& top = result->ranked[0];
  EXPECT_GE(top.length, 300u) << mp::ToString(top);
  const auto near_plant = [&](int64_t offset) {
    for (std::size_t p : planted->motif_offsets) {
      if (std::llabs(offset - static_cast<int64_t>(p)) <= 110) return true;
    }
    return false;
  };
  EXPECT_TRUE(near_plant(top.offset_a)) << mp::ToString(top);
  EXPECT_TRUE(near_plant(top.offset_b)) << mp::ToString(top);
}

}  // namespace
}  // namespace valmod
