// Tests for the ring-buffer series backing windowed streaming ingestion.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "series/windowed_series.h"

namespace valmod::series {
namespace {

TEST(SlidingBufferTest, PushPopKeepsLiveWindow) {
  SlidingBuffer<int> buffer;
  for (int i = 0; i < 10; ++i) buffer.PushBack(i);
  ASSERT_EQ(buffer.size(), 10u);
  buffer.PopFront(3);
  ASSERT_EQ(buffer.size(), 7u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<int>(i + 3));
  }
  EXPECT_EQ(buffer.back(), 9);
}

TEST(SlidingBufferTest, SpanIsContiguousAndLive) {
  SlidingBuffer<double> buffer;
  for (int i = 0; i < 8; ++i) buffer.PushBack(i * 0.5);
  buffer.PopFront(2);
  const auto span = buffer.Span();
  ASSERT_EQ(span.size(), 6u);
  EXPECT_DOUBLE_EQ(span[0], 1.0);
  EXPECT_DOUBLE_EQ(span[5], 3.5);
}

TEST(SlidingBufferTest, CompactionBoundsMemory) {
  // Stream far past the live size: the buffer must compact so its
  // footprint tracks the live window, not the total pushed.
  SlidingBuffer<double> buffer;
  const std::size_t live = 64;
  for (std::size_t i = 0; i < 100 * live; ++i) {
    buffer.PushBack(static_cast<double>(i));
    if (buffer.size() > live) buffer.PopFront();
  }
  EXPECT_EQ(buffer.size(), live);
  EXPECT_GT(buffer.compactions(), 0u);
  // Amortized bound: capacity stays within a small constant of the live
  // window (vector growth + the <2x live head slack before compaction).
  EXPECT_LE(buffer.MemoryBytes(), 8 * live * sizeof(double));
  EXPECT_DOUBLE_EQ(buffer[0], static_cast<double>(100 * live - live));
}

TEST(SlidingBufferTest, ClearResets) {
  SlidingBuffer<int> buffer;
  for (int i = 0; i < 5; ++i) buffer.PushBack(i);
  buffer.PopFront(2);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  buffer.PushBack(42);
  EXPECT_EQ(buffer[0], 42);
}

TEST(WindowedSeriesTest, UnboundedNeverEvicts) {
  WindowedSeries series(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(series.Append(static_cast<double>(i)), 0u);
  }
  EXPECT_EQ(series.size(), 1000u);
  EXPECT_EQ(series.start_index(), 0u);
  EXPECT_EQ(series.total_appended(), 1000u);
}

TEST(WindowedSeriesTest, BoundedEvictsOldest) {
  WindowedSeries series(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(series.Append(static_cast<double>(i)), 0u);
  }
  for (int i = 10; i < 25; ++i) {
    EXPECT_EQ(series.Append(static_cast<double>(i)), 1u);
  }
  EXPECT_EQ(series.size(), 10u);
  EXPECT_EQ(series.start_index(), 15u);
  EXPECT_EQ(series.total_appended(), 25u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i], static_cast<double>(15 + i));
  }
}

TEST(WindowedSeriesTest, MemoryBoundedOverLongStream) {
  const std::size_t max_points = 256;
  WindowedSeries series(max_points);
  for (std::size_t i = 0; i < 100 * max_points; ++i) {
    series.Append(static_cast<double>(i % 97));
  }
  EXPECT_EQ(series.size(), max_points);
  EXPECT_LE(series.MemoryBytes(), 8 * max_points * sizeof(double));
}

TEST(WindowedSeriesTest, ToDataSeriesMaterializesRetainedWindow) {
  WindowedSeries series(4);
  for (int i = 0; i < 7; ++i) series.Append(static_cast<double>(i));
  auto data = series.ToDataSeries(/*center=*/0.0);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 4u);
  EXPECT_DOUBLE_EQ(data->values()[0], 3.0);
  EXPECT_DOUBLE_EQ(data->values()[3], 6.0);
  // center=0 means centered() == values() bit-for-bit.
  EXPECT_EQ(data->centered()[0], data->values()[0]);
}

}  // namespace
}  // namespace valmod::series
