// Tests for the pan matrix profile.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "mp/pan_profile.h"
#include "mp/stomp.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::mp {
namespace {

TEST(PanProfileTest, RowsMatchPerLengthProfiles) {
  auto series = synth::ByName("ecg", 400, 111);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 20;
  options.max_length = 32;
  options.step = 4;  // 20, 24, 28, 32
  auto pan = ComputePanProfile(*series, options);
  ASSERT_TRUE(pan.ok());
  ASSERT_EQ(pan->lengths().size(), 4u);
  EXPECT_EQ(pan->width(), series->size() - 20 + 1);

  for (std::size_t length : pan->lengths()) {
    auto profile = ComputeStomp(*series, length, {});
    ASSERT_TRUE(profile.ok());
    auto row = pan->Row(length);
    ASSERT_TRUE(row.ok());
    for (std::size_t i = 0; i < profile->size(); ++i) {
      EXPECT_NEAR((*row)[i],
                  series::LengthNormalizedDistance(profile->distances[i],
                                                   length),
                  1e-9)
          << "length " << length << " offset " << i;
    }
    // Offsets past the row's subsequence count stay +inf padding.
    for (std::size_t i = profile->size(); i < pan->width(); ++i) {
      EXPECT_EQ((*row)[i], kInfinity);
    }
  }
}

TEST(PanProfileTest, BestCellIsGlobalMinimum) {
  auto series = synth::ByName("sine", 500, 113);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 25;
  options.max_length = 40;
  auto pan = ComputePanProfile(*series, options);
  ASSERT_TRUE(pan.ok());
  auto best = pan->BestCell();
  ASSERT_TRUE(best.ok());

  double expected = kInfinity;
  for (std::size_t length : pan->lengths()) {
    auto row = pan->Row(length);
    ASSERT_TRUE(row.ok());
    for (double v : *row) expected = std::min(expected, v);
  }
  EXPECT_DOUBLE_EQ(best->normalized_distance, expected);
  auto row = pan->Row(best->length);
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ((*row)[best->offset], expected);
}

TEST(PanProfileTest, RowLookupRejectsUncoveredLength) {
  auto series = synth::ByName("random_walk", 200, 115);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 10;
  options.max_length = 20;
  options.step = 5;
  auto pan = ComputePanProfile(*series, options);
  ASSERT_TRUE(pan.ok());
  EXPECT_TRUE(pan->Row(15).ok());
  EXPECT_EQ(pan->Row(16).status().code(), StatusCode::kNotFound);
}

TEST(PanProfileTest, WritesCsv) {
  auto series = synth::ByName("sine", 150, 117);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 10;
  options.max_length = 14;
  options.step = 2;
  auto pan = ComputePanProfile(*series, options);
  ASSERT_TRUE(pan.ok());

  const std::string path = testing::TempDir() + "/valmod_pan.csv";
  ASSERT_TRUE(pan->WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("length,o0,o1", 0), 0u);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u);  // lengths 10, 12, 14
  std::remove(path.c_str());
}

TEST(PanProfileTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 119);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 1;
  options.max_length = 10;
  EXPECT_FALSE(ComputePanProfile(*series, options).ok());
  options.min_length = 10;
  options.step = 0;
  EXPECT_FALSE(ComputePanProfile(*series, options).ok());
  options.step = 1;
  options.max_length = 100;
  EXPECT_FALSE(ComputePanProfile(*series, options).ok());
}

TEST(PanProfileTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 2000, 121);
  ASSERT_TRUE(series.ok());
  PanProfileOptions options;
  options.min_length = 50;
  options.max_length = 80;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(ComputePanProfile(*series, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::mp
