// Concurrency hammer for the shared MassEngine — the serving stack's core
// assumption is that one registry-held engine may serve any number of
// concurrent requests. N threads issue a mixed stream of row-profile,
// batched-row-profile, and distance-profile calls at different lengths and
// forced backends against ONE engine, racing each other through the
// engine's spectrum caches, chunk-spectra LRU, and scratch free list; the
// results must be bit-identical to the same calls executed serially on a
// fresh engine. Run under TSan in CI (the tsan job builds this target).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "mass/backend.h"
#include "mass/engine.h"
#include "series/generators.h"

namespace valmod::mass {
namespace {

struct CallSpec {
  enum Kind { kRow, kBatch, kDistance } kind = kRow;
  std::size_t offset = 0;  // row offset / query offset for distance
  std::size_t length = 0;
  ConvolutionBackend backend = ConvolutionBackend::kAuto;
};

/// The deterministic call mix one worker thread executes. Varying lengths
/// forces different FFT sizes and chunk-spectra entries (LRU churn);
/// varying backends hits every kernel family; the offsets stagger so
/// threads touch different windows of the shared series.
std::vector<CallSpec> BuildCalls(std::size_t thread_index, std::size_t n) {
  const ConvolutionBackend kBackends[] = {
      ConvolutionBackend::kAuto, ConvolutionBackend::kDirect,
      ConvolutionBackend::kFftSingle, ConvolutionBackend::kFftPair,
      ConvolutionBackend::kOverlapSave};
  const std::size_t kLengths[] = {16, 33, 64, 120, 256};
  std::vector<CallSpec> calls;
  for (std::size_t i = 0; i < 25; ++i) {
    CallSpec call;
    call.kind = static_cast<CallSpec::Kind>(i % 3);
    call.length = kLengths[(i + thread_index) % 5];
    call.offset = (thread_index * 131 + i * 37) % (n - call.length);
    call.backend = kBackends[(i + 2 * thread_index) % 5];
    calls.push_back(call);
  }
  return calls;
}

/// Executes one call and flattens the result to a comparable vector.
std::vector<double> Execute(MassEngine& engine, const CallSpec& call) {
  switch (call.kind) {
    case CallSpec::kRow: {
      auto row = engine.ComputeRowProfile(call.offset, call.length,
                                          call.backend);
      EXPECT_TRUE(row.ok()) << row.status().ToString();
      return row.ok() ? row->distances : std::vector<double>{};
    }
    case CallSpec::kBatch: {
      // A small batch of adjacent rows: exercises pair packing and the
      // batched tail path.
      const std::size_t count = engine.series().NumSubsequences(call.length);
      std::vector<std::size_t> rows;
      for (std::size_t r = 0; r < 3; ++r) {
        rows.push_back((call.offset + r * 17) % count);
      }
      auto profiles =
          engine.ComputeRowProfiles(rows, call.length, 1, call.backend);
      EXPECT_TRUE(profiles.ok()) << profiles.status().ToString();
      std::vector<double> flat;
      if (profiles.ok()) {
        for (const RowProfile& p : *profiles) {
          flat.insert(flat.end(), p.distances.begin(), p.distances.end());
        }
      }
      return flat;
    }
    case CallSpec::kDistance: {
      const auto values = engine.series().values();
      std::vector<double> query(values.begin() + call.offset,
                                values.begin() + call.offset + call.length);
      auto distances = engine.DistanceProfile(query, call.backend);
      EXPECT_TRUE(distances.ok()) << distances.status().ToString();
      return distances.ok() ? *distances : std::vector<double>{};
    }
  }
  return {};
}

TEST(EngineConcurrencyTest, SharedEngineBitIdenticalToSerial) {
  constexpr std::size_t kThreads = 4;
  const std::size_t n = 4096;
  auto series = synth::ByName("ecg", n, 3);
  ASSERT_TRUE(series.ok());

  // Serial reference: a fresh engine, every thread's calls in order.
  std::vector<std::vector<std::vector<double>>> expected(kThreads);
  {
    MassEngine reference(*series);
    for (std::size_t t = 0; t < kThreads; ++t) {
      for (const CallSpec& call : BuildCalls(t, n)) {
        expected[t].push_back(Execute(reference, call));
      }
    }
  }

  // Concurrent run: one SHARED engine, all threads at once. Repeat a few
  // times so cold-cache construction (first run) and warm-cache traffic
  // (later runs) both get raced.
  for (int round = 0; round < 3; ++round) {
    MassEngine shared(*series);
    std::vector<std::vector<std::vector<double>>> actual(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const CallSpec& call : BuildCalls(t, n)) {
          actual[t].push_back(Execute(shared, call));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    for (std::size_t t = 0; t < kThreads; ++t) {
      ASSERT_EQ(actual[t].size(), expected[t].size());
      for (std::size_t c = 0; c < expected[t].size(); ++c) {
        ASSERT_EQ(actual[t][c].size(), expected[t][c].size())
            << "thread " << t << " call " << c;
        for (std::size_t i = 0; i < expected[t][c].size(); ++i) {
          // Bit-identical: the engine guarantees per-call determinism
          // regardless of what other threads do to the shared caches.
          ASSERT_EQ(actual[t][c][i], expected[t][c][i])
              << "thread " << t << " call " << c << " entry " << i
              << " round " << round;
        }
      }
    }
  }
}

/// Same hammer against one engine reused across rounds (the registry's
/// long-lived engine), mixing threads that only read warm caches with
/// threads that force new sizes into the chunk-spectra LRU.
TEST(EngineConcurrencyTest, LongLivedEngineStaysConsistentUnderChurn) {
  const std::size_t n = 2048;
  auto series = synth::ByName("random_walk", n, 11);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);

  // Expected single row per length, computed serially first.
  const std::size_t kLengths[] = {8, 24, 60, 130, 300, 512};
  std::vector<std::vector<double>> expected;
  for (const std::size_t length : kLengths) {
    auto row = engine.ComputeRowProfile(5, length);
    ASSERT_TRUE(row.ok());
    expected.push_back(row->distances);
  }

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const std::size_t li = (t + static_cast<std::size_t>(i)) % 6;
        auto row = engine.ComputeRowProfile(5, kLengths[li]);
        ASSERT_TRUE(row.ok());
        ASSERT_EQ(row->distances.size(), expected[li].size());
        for (std::size_t j = 0; j < expected[li].size(); ++j) {
          ASSERT_EQ(row->distances[j], expected[li][j])
              << "thread " << t << " iter " << i << " length "
              << kLengths[li];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace valmod::mass
