// Miss-coalescing tests: N concurrent identical cache misses must run the
// underlying computation exactly once (one leader, N-1 parked waiters),
// and a failed leader must fail over to the next waiter instead of
// erroring every one of them. Computation counts are observed through the
// `server.query.compute` fault point's hit counter — every admitted query
// job checks it, so hits == computations actually executed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "service/server.h"

namespace valmod::service {
namespace {

using json::Value;

class CoalescingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFaultInjectionEnabled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
    fault::FaultInjector::Global().DisarmAll();
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      fault::FaultInjector::Global().DisarmAll();
    }
  }
};

Value Roundtrip(Service& service, const std::string& line) {
  const std::string response = service.HandleRequestLine(line);
  auto parsed = json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << "unparseable response: " << response;
  return parsed.ok() ? *parsed : Value();
}

std::uint64_t PointHits(std::string_view point) {
  for (const auto& info : fault::FaultInjector::Global().List()) {
    if (info.point == point) return info.hits;
  }
  return 0;
}

void LoadDataset(Service& service) {
  Value load = Roundtrip(service,
      R"({"id":0,"verb":"load","dataset":"d",)"
      R"("params":{"generator":"sine","n":1024,"seed":3}})");
  ASSERT_TRUE(load.GetBool("ok", false)) << load.Serialize();
}

constexpr char kRequest[] =
    R"({"id":1,"verb":"motifs","dataset":"d",)"
    R"("params":{"lmin":64,"lmax":66,"k":1}})";

TEST_F(CoalescingTest, ConcurrentIdenticalMissesComputeExactlyOnce) {
  Service service;
  LoadDataset(service);

  // Slow the computation down so every thread arrives while the first
  // request's flight is still open. The delay fault counts a hit per
  // executed computation either way.
  fault::FaultSpec slow;
  slow.kind = fault::FaultKind::kDelay;
  slow.delay_ms = 200;
  fault::FaultInjector::Global().Arm("server.query.compute", slow);

  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&service, &responses, t] {
      responses[t] = service.HandleRequestLine(kRequest);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(PointHits("server.query.compute"), 1u)
      << "identical concurrent misses must share one computation";

  int leaders = 0;
  std::string result_bytes;
  for (const auto& wire : responses) {
    auto parsed = json::Parse(wire);
    ASSERT_TRUE(parsed.ok()) << wire;
    ASSERT_TRUE(parsed->GetBool("ok", false)) << wire;
    // Every response carries identical result bytes regardless of how it
    // was delivered (computed, coalesced fan-out, or late cache hit).
    const std::string bytes = parsed->Find("result")->Serialize();
    if (result_bytes.empty()) result_bytes = bytes;
    EXPECT_EQ(bytes, result_bytes);
    if (!parsed->GetBool("cached", false) &&
        !parsed->GetBool("coalesced", false)) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1) << "exactly one response is the computed one";

  Value stats = Roundtrip(service, R"({"id":9,"verb":"stats"})");
  const Value* cache = stats.Find("result")->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->GetNumber("inflight", -1), 0.0);
  // Whoever raced in while the flight was open was coalesced; the rest
  // (if any) were cache hits after completion. Together: kClients - 1.
  EXPECT_EQ(cache->GetNumber("coalesced", -1) +
                cache->GetNumber("hits", -1),
            static_cast<double>(kClients - 1));
  const Value* scheduler = stats.Find("result")->Find("scheduler");
  ASSERT_NE(scheduler, nullptr);
  EXPECT_EQ(scheduler->GetNumber("completed", -1), 1.0);
}

TEST_F(CoalescingTest, FailedLeaderFailsOverToOneWaiter) {
  Service service;
  LoadDataset(service);

  // The leader's worker stalls long enough for every client to park on
  // the flight, then its computation fails (first hit only). The flight
  // must promote ONE waiter — which recomputes successfully — instead of
  // fanning the error out to everyone.
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kDelay;
  stall.delay_ms = 200;
  fault::FaultInjector::Global().Arm("scheduler.worker.stall", stall);
  fault::FaultSpec fail_once;
  fail_once.kind = fault::FaultKind::kError;
  fail_once.code = StatusCode::kInternal;
  fail_once.nth = 1;
  fail_once.max_fires = 1;
  fault::FaultInjector::Global().Arm("server.query.compute", fail_once);

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&service, &responses, t] {
      responses[t] = service.HandleRequestLine(kRequest);
    });
  }
  for (auto& thread : threads) thread.join();

  int ok_count = 0;
  int error_count = 0;
  for (const auto& wire : responses) {
    auto parsed = json::Parse(wire);
    ASSERT_TRUE(parsed.ok()) << wire;
    if (parsed->GetBool("ok", false)) {
      ++ok_count;
    } else {
      ++error_count;
      EXPECT_EQ(parsed->Find("error")->GetString("code", ""), "Internal")
          << wire;
    }
  }
  EXPECT_EQ(error_count, 1) << "only the failed leader sees the error";
  EXPECT_EQ(ok_count, kClients - 1);
  // One failed computation + one successful recompute by the promoted
  // waiter — never one per waiter.
  EXPECT_EQ(PointHits("server.query.compute"), 2u);

  Value stats = Roundtrip(service, R"({"id":9,"verb":"stats"})");
  const Value* cache = stats.Find("result")->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->GetNumber("failovers", -1), 1.0);
  EXPECT_EQ(cache->GetNumber("inflight", -1), 0.0);
}

TEST_F(CoalescingTest, DistinctRequestsAreNotCoalesced) {
  Service service;
  LoadDataset(service);
  fault::FaultSpec slow;
  slow.kind = fault::FaultKind::kDelay;
  slow.delay_ms = 50;
  fault::FaultInjector::Global().Arm("server.query.compute", slow);

  // Two requests differing in params must both compute.
  std::thread a([&service] {
    const std::string wire = service.HandleRequestLine(kRequest);
    auto parsed = json::Parse(wire);
    ASSERT_TRUE(parsed.ok() && parsed->GetBool("ok", false)) << wire;
  });
  std::thread b([&service] {
    const std::string wire = service.HandleRequestLine(
        R"({"id":2,"verb":"motifs","dataset":"d",)"
        R"("params":{"lmin":64,"lmax":66,"k":2}})");
    auto parsed = json::Parse(wire);
    ASSERT_TRUE(parsed.ok() && parsed->GetBool("ok", false)) << wire;
  });
  a.join();
  b.join();
  EXPECT_EQ(PointHits("server.query.compute"), 2u);
}

}  // namespace
}  // namespace valmod::service
