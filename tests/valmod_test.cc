// The headline correctness suite: VALMOD's per-length top-k motif pairs must
// be exact, i.e. match the naive per-length STOMP baseline, across workload
// shapes, length ranges, k, and p. Also covers VALMAP semantics, pruning
// statistics, threading, and option validation.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "baselines/stomp_range.h"
#include "core/valmod.h"
#include "mp/matrix_profile.h"
#include "mp/stomp.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::core {
namespace {

struct ValmodCase {
  std::string generator;
  std::size_t n;
  std::size_t min_length;
  std::size_t max_length;
  std::size_t k;
  std::size_t p;
};

void ExpectSamePerLengthDistances(const std::vector<LengthMotifs>& actual,
                                  const std::vector<LengthMotifs>& expected,
                                  double tolerance) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].length, expected[i].length);
    ASSERT_EQ(actual[i].motifs.size(), expected[i].motifs.size())
        << "length " << expected[i].length;
    for (std::size_t m = 0; m < expected[i].motifs.size(); ++m) {
      EXPECT_NEAR(actual[i].motifs[m].distance, expected[i].motifs[m].distance,
                  tolerance)
          << "length " << expected[i].length << " rank " << m;
    }
  }
}

/// Every reported pair must be genuine: recomputing its distance from the
/// definitions must agree, members must respect the exclusion zone, and
/// ranks must be ordered.
void ExpectPairsAreGenuine(const series::DataSeries& series,
                           const ValmodResult& result,
                           double exclusion_fraction) {
  for (const LengthMotifs& lm : result.per_length) {
    double previous = -1.0;
    for (const mp::MotifPair& pair : lm.motifs) {
      ASSERT_GE(pair.offset_a, 0);
      ASSERT_LT(pair.offset_a, pair.offset_b);
      const std::size_t exclusion =
          mp::ExclusionZoneFor(lm.length, exclusion_fraction);
      EXPECT_GE(static_cast<std::size_t>(pair.offset_b - pair.offset_a),
                exclusion)
          << "trivial pair at length " << lm.length;
      auto d = series::SubsequenceDistance(
          series, static_cast<std::size_t>(pair.offset_a),
          static_cast<std::size_t>(pair.offset_b), lm.length);
      ASSERT_TRUE(d.ok());
      EXPECT_NEAR(*d, pair.distance, 2e-5)
          << "claimed distance wrong at length " << lm.length;
      EXPECT_GE(pair.distance, previous - 1e-9) << "ranks out of order";
      previous = pair.distance;
    }
  }
}

class ValmodExactnessTest : public ::testing::TestWithParam<ValmodCase> {};

TEST_P(ValmodExactnessTest, MatchesStompRange) {
  const ValmodCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 211);
  ASSERT_TRUE(series.ok());

  ValmodOptions options;
  options.min_length = c.min_length;
  options.max_length = c.max_length;
  options.k = c.k;
  options.p = c.p;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  baselines::StompRangeOptions baseline_options;
  baseline_options.min_length = c.min_length;
  baseline_options.max_length = c.max_length;
  baseline_options.k = c.k;
  auto baseline = baselines::RunStompRange(*series, baseline_options);
  ASSERT_TRUE(baseline.ok());

  ExpectSamePerLengthDistances(result->per_length, *baseline, 2e-5);
  ExpectPairsAreGenuine(*series, *result, options.exclusion_fraction);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ValmodExactnessTest,
    ::testing::Values(
        ValmodCase{"random_walk", 500, 20, 60, 1, 5},
        ValmodCase{"random_walk", 400, 16, 48, 3, 10},
        ValmodCase{"sine", 600, 40, 80, 2, 5},
        ValmodCase{"ecg", 700, 30, 90, 2, 8},
        ValmodCase{"astro", 500, 25, 55, 1, 3},
        ValmodCase{"entomology", 600, 20, 50, 2, 5},
        ValmodCase{"seismic", 600, 24, 56, 1, 10},
        // Stress: p = 1 forces heavy recomputation but must stay exact.
        ValmodCase{"random_walk", 350, 16, 40, 2, 1},
        // Degenerate range: a single length reduces to plain STOMP.
        ValmodCase{"ecg", 400, 32, 32, 3, 5}));

TEST(ValmodTest, MinLengthProfileMatchesStomp) {
  auto series = synth::ByName("ecg", 500, 17);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 25;
  options.max_length = 40;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  auto stomp = mp::ComputeStomp(*series, 25, {});
  ASSERT_TRUE(stomp.ok());
  ASSERT_EQ(result->min_length_profile.size(), stomp->size());
  for (std::size_t i = 0; i < stomp->size(); ++i) {
    EXPECT_NEAR(result->min_length_profile.distances[i],
                stomp->distances[i], 2e-6);
  }
}

TEST(ValmodTest, ValmapReflectsBestNormalizedPairs) {
  auto series = synth::ByName("ecg", 600, 19);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 30;
  options.max_length = 70;
  options.k = 2;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  const Valmap& valmap = result->valmap;
  ASSERT_EQ(valmap.size(), series->size() - 30 + 1);

  // Replay the definition: start from the normalized min-length profile and
  // fold in every reported pair; the result must equal the valmap.
  std::vector<double> expected(valmap.size());
  for (std::size_t i = 0; i < valmap.size(); ++i) {
    expected[i] = series::LengthNormalizedDistance(
        result->min_length_profile.distances[i], 30);
  }
  for (const LengthMotifs& lm : result->per_length) {
    if (lm.length == 30) continue;  // init state already covers min length
    for (const mp::MotifPair& pair : lm.motifs) {
      expected[pair.offset_a] =
          std::min(expected[pair.offset_a], pair.normalized_distance);
      expected[pair.offset_b] =
          std::min(expected[pair.offset_b], pair.normalized_distance);
    }
  }
  for (std::size_t i = 0; i < valmap.size(); ++i) {
    EXPECT_NEAR(valmap.normalized_profile()[i], expected[i], 1e-9) << i;
  }
}

TEST(ValmodTest, ValmapLengthProfileConsistent) {
  auto series = synth::ByName("ecg", 500, 23);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 25;
  options.max_length = 60;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  const Valmap& valmap = result->valmap;
  for (std::size_t i = 0; i < valmap.size(); ++i) {
    const std::size_t l = valmap.length_profile()[i];
    EXPECT_GE(l, options.min_length);
    EXPECT_LE(l, options.max_length);
    if (valmap.index_profile()[i] >= 0) {
      // The recorded match must fit in the series at the recorded length.
      EXPECT_LE(static_cast<std::size_t>(valmap.index_profile()[i]) + l,
                series->size());
    }
  }
}

TEST(ValmodTest, RankedIsSortedAndComplete) {
  auto series = synth::ByName("astro", 500, 29);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 20;
  options.max_length = 50;
  options.k = 2;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  std::size_t total = 0;
  for (const LengthMotifs& lm : result->per_length) total += lm.motifs.size();
  EXPECT_EQ(result->ranked.size(), total);
  for (std::size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_LE(result->ranked[i - 1].normalized_distance,
              result->ranked[i].normalized_distance + 1e-12);
  }
}

TEST(ValmodTest, StatsAccountForAllRows) {
  auto series = synth::ByName("random_walk", 400, 31);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 20;
  options.max_length = 40;
  options.p = 4;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stats.size(), 20u);  // lengths 21..40
  for (const LengthStats& s : result->stats) {
    const std::size_t rows = series->size() - s.length + 1;
    EXPECT_EQ(s.valid_rows + s.invalid_rows + s.constant_rows, rows)
        << "length " << s.length;
    EXPECT_GE(s.passes, 1u);
    EXPECT_LE(s.recomputed_rows, rows);
  }
}

TEST(ValmodTest, LargerPReducesRecomputation) {
  auto series = synth::ByName("ecg", 800, 37);
  ASSERT_TRUE(series.ok());
  auto run_with_p = [&](std::size_t p) {
    ValmodOptions options;
    options.min_length = 40;
    options.max_length = 80;
    options.p = p;
    auto result = RunValmod(*series, options);
    EXPECT_TRUE(result.ok());
    std::size_t recomputed = 0;
    for (const LengthStats& s : result->stats) recomputed += s.recomputed_rows;
    return recomputed;
  };
  const std::size_t recomputed_small = run_with_p(1);
  const std::size_t recomputed_large = run_with_p(16);
  EXPECT_LE(recomputed_large, recomputed_small);
}

TEST(ValmodTest, ThreadedInitialScanMatchesSerial) {
  auto series = synth::ByName("ecg", 900, 41);
  ASSERT_TRUE(series.ok());
  ValmodOptions serial;
  serial.min_length = 30;
  serial.max_length = 60;
  serial.k = 2;
  ValmodOptions threaded = serial;
  threaded.num_threads = 4;

  auto a = RunValmod(*series, serial);
  auto b = RunValmod(*series, threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->per_length.size(), b->per_length.size());
  for (std::size_t i = 0; i < a->per_length.size(); ++i) {
    ASSERT_EQ(a->per_length[i].motifs.size(), b->per_length[i].motifs.size());
    for (std::size_t m = 0; m < a->per_length[i].motifs.size(); ++m) {
      EXPECT_NEAR(a->per_length[i].motifs[m].distance,
                  b->per_length[i].motifs[m].distance, 1e-9);
    }
  }
}

// The certification loop routes recompute batches through the engine's
// batched entry point. The batch composition (floor of 16 rows) and the
// row pairing inside a batch depend only on the row order — never on the
// thread count — so the entire result must be bit-identical, not just
// close, across thread counts.
TEST(ValmodTest, BatchedRecomputeBitIdenticalAcrossThreadCounts) {
  auto series = synth::ByName("ecg", 2000, 53);
  ASSERT_TRUE(series.ok());
  ValmodOptions base;
  base.min_length = 32;
  base.max_length = 72;
  base.k = 3;

  auto reference = RunValmod(*series, base);
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 4}) {
    ValmodOptions options = base;
    options.num_threads = threads;
    auto result = RunValmod(*series, options);
    ASSERT_TRUE(result.ok());

    ASSERT_EQ(result->per_length.size(), reference->per_length.size());
    for (std::size_t i = 0; i < reference->per_length.size(); ++i) {
      const auto& want = reference->per_length[i].motifs;
      const auto& got = result->per_length[i].motifs;
      ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
      for (std::size_t m = 0; m < want.size(); ++m) {
        EXPECT_EQ(got[m].offset_a, want[m].offset_a);
        EXPECT_EQ(got[m].offset_b, want[m].offset_b);
        EXPECT_EQ(got[m].distance, want[m].distance)
            << "threads=" << threads << " length "
            << reference->per_length[i].length << " rank " << m;
      }
    }
    ASSERT_EQ(result->min_length_profile.distances.size(),
              reference->min_length_profile.distances.size());
    for (std::size_t j = 0;
         j < reference->min_length_profile.distances.size(); ++j) {
      EXPECT_EQ(result->min_length_profile.distances[j],
                reference->min_length_profile.distances[j])
          << "threads=" << threads << " j=" << j;
    }
  }
}

TEST(ValmodTest, ConstantSeriesHandled) {
  auto series = series::DataSeries::Create(std::vector<double>(200, 1.0));
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 10;
  options.max_length = 20;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  for (const LengthMotifs& lm : result->per_length) {
    ASSERT_EQ(lm.motifs.size(), 1u) << "length " << lm.length;
    EXPECT_DOUBLE_EQ(lm.motifs[0].distance, 0.0);
  }
}

TEST(ValmodTest, SeriesWithConstantRegionStaysExact) {
  // A flat stretch embedded in structure exercises the constant-row paths
  // and the unseeded-row recompute path at every length.
  std::vector<double> data(500);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i) * 0.15) +
              0.05 * std::sin(static_cast<double>(i) * 1.7);
  }
  for (std::size_t i = 200; i < 260; ++i) data[i] = 0.7;
  auto series = series::DataSeries::Create(std::move(data));
  ASSERT_TRUE(series.ok());

  ValmodOptions options;
  options.min_length = 20;
  options.max_length = 45;
  options.k = 2;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  baselines::StompRangeOptions baseline_options;
  baseline_options.min_length = 20;
  baseline_options.max_length = 45;
  baseline_options.k = 2;
  auto baseline = baselines::RunStompRange(*series, baseline_options);
  ASSERT_TRUE(baseline.ok());
  ExpectSamePerLengthDistances(result->per_length, *baseline, 2e-5);
}

TEST(ValmodTest, StatsStayAlignedWhenRangeShrinksToNoPairs) {
  // Regression: the early-exit path for lengths whose window count cannot
  // fit a non-trivial pair used to emit empty per_length entries with no
  // matching LengthStats, silently desyncing the two vectors for consumers
  // that zip them. Skipped lengths must now carry zeroed stats entries.
  auto series = synth::ByName("random_walk", 30, 43);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 5;
  options.max_length = 29;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  // per_length covers [min_length, max_length]; stats covers the update
  // lengths (min_length, max_length] — one entry per length, aligned.
  ASSERT_EQ(result->per_length.size(), 25u);
  ASSERT_EQ(result->stats.size(), result->per_length.size() - 1);
  for (std::size_t i = 0; i < result->stats.size(); ++i) {
    EXPECT_EQ(result->stats[i].length, result->per_length[i + 1].length)
        << "stats desynced at index " << i;
  }
  // The tail lengths were skipped (no possible pair): empty motifs and
  // all-zero counters.
  const LengthStats& last = result->stats.back();
  EXPECT_TRUE(result->per_length.back().motifs.empty());
  EXPECT_EQ(last.valid_rows + last.invalid_rows + last.constant_rows, 0u);
  EXPECT_EQ(last.recomputed_rows, 0u);
  EXPECT_EQ(last.passes, 0u);
  // Early lengths were processed normally and account for their rows.
  const LengthStats& first = result->stats.front();
  EXPECT_EQ(first.valid_rows + first.invalid_rows + first.constant_rows,
            series->size() - first.length + 1);
}

TEST(ValmodTest, RangeShrinkingToNoPairs) {
  // With 30 points and max_length 29, long lengths leave too few windows
  // for any non-trivial pair; those lengths must report empty motif lists.
  auto series = synth::ByName("random_walk", 30, 43);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 5;
  options.max_length = 29;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_length.size(), 25u);
  EXPECT_FALSE(result->per_length.front().motifs.empty());
  EXPECT_TRUE(result->per_length.back().motifs.empty());
}

TEST(ValmodTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 47);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;

  options.min_length = 1;  // too small
  options.max_length = 20;
  EXPECT_EQ(RunValmod(*series, options).status().code(),
            StatusCode::kInvalidArgument);

  options.min_length = 30;
  options.max_length = 20;  // inverted
  EXPECT_FALSE(RunValmod(*series, options).ok());

  options.min_length = 10;
  options.max_length = 100;  // leaves < 2 windows
  EXPECT_FALSE(RunValmod(*series, options).ok());

  options.max_length = 20;
  options.k = 0;
  EXPECT_FALSE(RunValmod(*series, options).ok());

  options.k = 1;
  options.p = 0;
  EXPECT_FALSE(RunValmod(*series, options).ok());

  options.p = 5;
  options.exclusion_fraction = 1.5;
  EXPECT_FALSE(RunValmod(*series, options).ok());

  options.exclusion_fraction = 0.5;
  EXPECT_TRUE(RunValmod(*series, options).ok());
}

TEST(ValmodTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 2000, 53);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 50;
  options.max_length = 200;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(RunValmod(*series, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ValmodTest, AllowPartialStillErrorsWhenNothingCompleted) {
  // An already-expired deadline means not even the initial scan ran:
  // there is no exact prefix to return, so allow_partial must NOT turn
  // the failure into an empty "success".
  auto series = synth::ByName("random_walk", 2000, 53);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 50;
  options.max_length = 200;
  options.allow_partial = true;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(RunValmod(*series, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ValmodTest, AllowPartialPrefixIsExact) {
  auto series = synth::ByName("random_walk", 3000, 71);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 40;
  options.max_length = 160;
  options.k = 2;

  // Reference: the unconstrained run.
  const auto started = std::chrono::steady_clock::now();
  auto full = RunValmod(*series, options);
  const double full_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->partial);
  ASSERT_EQ(full->per_length.size(), 160u - 40u + 1u);

  // Rerun under a deadline sized to fire mid-way through the
  // variable-length sweep. Exact timing is machine-dependent, so every
  // legal outcome is accepted — but a partial result must be a
  // length-exact prefix of the reference, and partiality must be flagged.
  options.allow_partial = true;
  options.deadline = Deadline::After(std::max(0.6 * full_seconds, 0.005));
  auto constrained = RunValmod(*series, options);
  if (!constrained.ok()) {
    // The deadline beat the initial scan; nothing to hand back.
    EXPECT_EQ(constrained.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  ASSERT_FALSE(constrained->per_length.empty());
  EXPECT_LE(constrained->per_length.size(), full->per_length.size());
  if (constrained->partial) {
    EXPECT_LT(constrained->per_length.size(), full->per_length.size());
  } else {
    EXPECT_EQ(constrained->per_length.size(), full->per_length.size());
  }
  // Whatever got done is the exact answer for those lengths: same lengths
  // in the same ascending order, same motif distances as the reference.
  std::vector<LengthMotifs> reference_prefix(
      full->per_length.begin(),
      full->per_length.begin() +
          static_cast<std::ptrdiff_t>(constrained->per_length.size()));
  ExpectSamePerLengthDistances(constrained->per_length, reference_prefix,
                               1e-9);
}

TEST(ValmodTest, DisablingValmapLeavesItEmpty) {
  auto series = synth::ByName("sine", 300, 59);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 20;
  options.max_length = 30;
  options.build_valmap = false;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->valmap.size(), 0u);
  EXPECT_FALSE(result->per_length.empty());
}

TEST(ValmodTest, AllRowMinimaSelectionMatchesBaseline) {
  auto series = synth::ByName("ecg", 500, 61);
  ASSERT_TRUE(series.ok());
  ValmodOptions options;
  options.min_length = 25;
  options.max_length = 50;
  options.k = 3;
  options.selection = mp::MotifSelection::kAllRowMinima;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok());

  baselines::StompRangeOptions baseline_options;
  baseline_options.min_length = 25;
  baseline_options.max_length = 50;
  baseline_options.k = 3;
  baseline_options.selection = mp::MotifSelection::kAllRowMinima;
  auto baseline = baselines::RunStompRange(*series, baseline_options);
  ASSERT_TRUE(baseline.ok());
  ExpectSamePerLengthDistances(result->per_length, *baseline, 2e-5);
}

TEST(RankingTest, OrdersByNormalizedDistance) {
  mp::MotifPair a;
  a.offset_a = 0;
  a.offset_b = 10;
  a.length = 100;
  a.distance = 10.0;
  a.normalized_distance = 1.0;
  mp::MotifPair b = a;
  b.length = 400;
  b.normalized_distance = 0.5;
  mp::MotifPair c = a;
  c.length = 25;
  c.normalized_distance = 2.0;

  auto ranked = RankByNormalizedDistance({a, b, c});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].length, 400u);
  EXPECT_EQ(ranked[1].length, 100u);
  EXPECT_EQ(ranked[2].length, 25u);
}

}  // namespace
}  // namespace valmod::core
