// Tests for the comparison baselines: each must be exact (validated against
// the brute-force/STOMP ground truth), since the paper's Figure 3 compares
// exact algorithms on speed, not quality.

#include <gtest/gtest.h>

#include <string>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_range.h"
#include "mp/brute_force.h"
#include "mp/motif.h"
#include "series/generators.h"

namespace valmod::baselines {
namespace {

struct BaselineCase {
  std::string generator;
  std::size_t n;
  std::size_t min_length;
  std::size_t max_length;
};

class BaselineExactnessTest : public ::testing::TestWithParam<BaselineCase> {
 protected:
  /// Ground-truth best-pair distance per length via brute force.
  std::vector<double> BruteBestDistances(const series::DataSeries& series,
                                         std::size_t min_length,
                                         std::size_t max_length) {
    std::vector<double> best;
    for (std::size_t l = min_length; l <= max_length; ++l) {
      auto profile = mp::ComputeBruteForce(series, l, {});
      EXPECT_TRUE(profile.ok());
      double d = mp::kInfinity;
      for (double value : profile->distances) d = std::min(d, value);
      best.push_back(d);
    }
    return best;
  }
};

TEST_P(BaselineExactnessTest, StompRangeMatchesBruteForce) {
  const BaselineCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 71);
  ASSERT_TRUE(series.ok());

  StompRangeOptions options;
  options.min_length = c.min_length;
  options.max_length = c.max_length;
  auto result = RunStompRange(*series, options);
  ASSERT_TRUE(result.ok());

  const std::vector<double> expected =
      BruteBestDistances(*series, c.min_length, c.max_length);
  ASSERT_EQ(result->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FALSE((*result)[i].motifs.empty());
    EXPECT_NEAR((*result)[i].motifs[0].distance, expected[i], 2e-5)
        << "length " << c.min_length + i;
  }
}

TEST_P(BaselineExactnessTest, MoenMatchesBruteForce) {
  const BaselineCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 73);
  ASSERT_TRUE(series.ok());

  MoenOptions options;
  options.min_length = c.min_length;
  options.max_length = c.max_length;
  auto result = RunMoen(*series, options);
  ASSERT_TRUE(result.ok());

  const std::vector<double> expected =
      BruteBestDistances(*series, c.min_length, c.max_length);
  ASSERT_EQ(result->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FALSE((*result)[i].motifs.empty()) << "length " << c.min_length + i;
    EXPECT_NEAR((*result)[i].motifs[0].distance, expected[i], 2e-5)
        << "length " << c.min_length + i;
  }
}

TEST_P(BaselineExactnessTest, QuickMotifMatchesBruteForce) {
  const BaselineCase& c = GetParam();
  auto series = synth::ByName(c.generator, c.n, 79);
  ASSERT_TRUE(series.ok());

  QuickMotifRangeOptions options;
  options.min_length = c.min_length;
  options.max_length = c.max_length;
  auto result = RunQuickMotifRange(*series, options);
  ASSERT_TRUE(result.ok());

  const std::vector<double> expected =
      BruteBestDistances(*series, c.min_length, c.max_length);
  ASSERT_EQ(result->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FALSE((*result)[i].motifs.empty()) << "length " << c.min_length + i;
    EXPECT_NEAR((*result)[i].motifs[0].distance, expected[i], 2e-5)
        << "length " << c.min_length + i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BaselineExactnessTest,
    ::testing::Values(BaselineCase{"random_walk", 300, 16, 32},
                      BaselineCase{"sine", 350, 25, 40},
                      BaselineCase{"ecg", 400, 30, 45},
                      BaselineCase{"entomology", 350, 20, 35}));

TEST(MoenTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 81);
  ASSERT_TRUE(series.ok());
  MoenOptions options;
  options.min_length = 1;
  options.max_length = 10;
  EXPECT_FALSE(RunMoen(*series, options).ok());
  options.min_length = 20;
  options.max_length = 10;
  EXPECT_FALSE(RunMoen(*series, options).ok());
  options.min_length = 10;
  options.max_length = 100;
  EXPECT_FALSE(RunMoen(*series, options).ok());
  options.max_length = 20;
  options.num_references = 0;
  EXPECT_FALSE(RunMoen(*series, options).ok());
}

TEST(MoenTest, SingleReferenceStillExact) {
  auto series = synth::ByName("ecg", 300, 83);
  ASSERT_TRUE(series.ok());
  MoenOptions options;
  options.min_length = 25;
  options.max_length = 30;
  options.num_references = 1;
  auto result = RunMoen(*series, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < result->size(); ++i) {
    auto profile = mp::ComputeBruteForce(*series, 25 + i, {});
    ASSERT_TRUE(profile.ok());
    double best = mp::kInfinity;
    for (double d : profile->distances) best = std::min(best, d);
    EXPECT_NEAR((*result)[i].motifs[0].distance, best, 2e-5);
  }
}

TEST(QuickMotifTest, SmallBlocksAndDimensions) {
  auto series = synth::ByName("sine", 300, 87);
  ASSERT_TRUE(series.ok());
  QuickMotifOptions options;
  options.paa_dimensions = 4;
  options.block_size = 8;
  auto pair = RunQuickMotif(*series, 30, options);
  ASSERT_TRUE(pair.ok());

  auto profile = mp::ComputeBruteForce(*series, 30, {});
  ASSERT_TRUE(profile.ok());
  double best = mp::kInfinity;
  for (double d : profile->distances) best = std::min(best, d);
  EXPECT_NEAR(pair->distance, best, 2e-5);
}

TEST(QuickMotifTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 89);
  ASSERT_TRUE(series.ok());
  QuickMotifOptions bad_paa;
  bad_paa.paa_dimensions = 0;
  EXPECT_FALSE(RunQuickMotif(*series, 20, bad_paa).ok());
  bad_paa.paa_dimensions = 30;  // exceeds length
  EXPECT_FALSE(RunQuickMotif(*series, 20, bad_paa).ok());
  QuickMotifOptions bad_block;
  bad_block.block_size = 0;
  EXPECT_FALSE(RunQuickMotif(*series, 20, bad_block).ok());
  // Length with no non-trivial pairs.
  EXPECT_FALSE(RunQuickMotif(*series, 99, {}).ok());
}

TEST(StompRangeTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 91);
  ASSERT_TRUE(series.ok());
  StompRangeOptions options;
  options.min_length = 30;
  options.max_length = 20;
  EXPECT_FALSE(RunStompRange(*series, options).ok());
  options.min_length = 10;
  options.max_length = 20;
  options.k = 0;
  EXPECT_FALSE(RunStompRange(*series, options).ok());
}

TEST(StompRangeTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 3000, 93);
  ASSERT_TRUE(series.ok());
  StompRangeOptions options;
  options.min_length = 50;
  options.max_length = 100;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(RunStompRange(*series, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::baselines
