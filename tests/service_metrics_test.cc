// Tests for the per-verb latency metrics: the Welford accumulator's exact
// moments, the log-scale histogram's bucket math and quantile bounds, and
// the VerbMetrics snapshot the `stats` verb serializes.

#include "service/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace valmod::service {
namespace {

TEST(WelfordTest, MatchesClosedFormMoments) {
  WelfordAccumulator acc;
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double s : samples) acc.Add(s);
  EXPECT_EQ(acc.n, samples.size());
  EXPECT_DOUBLE_EQ(acc.mean, 5.0);
  // Population variance of the classic example set is exactly 4.
  EXPECT_DOUBLE_EQ(acc.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.StdDev(), 2.0);
}

TEST(WelfordTest, StableUnderLargeOffset) {
  // The naive sum-of-squares formula loses all precision here; Welford
  // must not.
  WelfordAccumulator acc;
  const double offset = 1e9;
  for (double s : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.Add(s);
  EXPECT_DOUBLE_EQ(acc.mean, offset + 2.0);
  EXPECT_NEAR(acc.Variance(), 2.0 / 3.0, 1e-9);
}

TEST(WelfordTest, DegenerateCounts) {
  WelfordAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
  acc.Add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean, 42.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);  // defined from two samples on
}

TEST(LatencyHistogramTest, BucketMathRoundTrips) {
  // Each bucket's lower bound must map back to that bucket's index.
  for (int i = 0; i < LatencyHistogram::kBucketCount; i += 7) {
    const double lower = LatencyHistogram::BucketLowerMs(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), i) << "bucket " << i;
  }
  // Underflow clamps to the first bucket, overflow to the last.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e12),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram hist;
  // 100 samples spread uniformly over [1, 100] ms.
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max_ms(), 100.0);
  // Quarter-octave buckets bound the relative error at 2^(1/4) ≈ 1.19;
  // allow a full bucket either side.
  const double p50 = hist.QuantileMs(0.5);
  EXPECT_GE(p50, 50.0 / 1.2);
  EXPECT_LE(p50, 50.0 * 1.2);
  const double p99 = hist.QuantileMs(0.99);
  EXPECT_GE(p99, 99.0 / 1.2);
  EXPECT_LE(p99, 100.0);  // clamped to the observed max
  // Quantiles never leave the observed range.
  EXPECT_GE(hist.QuantileMs(0.0), 1.0);
  EXPECT_LE(hist.QuantileMs(1.0), 100.0);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max_ms(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantileIsThatSample) {
  LatencyHistogram hist;
  hist.Record(3.7);
  // Clamping to observed min/max beats the bucket midpoint here.
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.5), 3.7);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.99), 3.7);
}

TEST(LatencyHistogramTest, ZeroAndNegativeDurationsLandInFirstBucket) {
  LatencyHistogram hist;
  hist.Record(0.0);
  hist.Record(-5.0);                // clock skew / bug: clamped, not UB
  hist.Record(std::nan(""));        // never corrupts min/max
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max_ms(), 0.0);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.5), 0.0);
  const auto cumulative = hist.CumulativePerDoubling();
  EXPECT_EQ(cumulative.front(), 3u);  // all three in the lowest doubling
  EXPECT_EQ(cumulative.back(), 3u);   // cumulative: total everywhere above
}

TEST(LatencyHistogramTest, BeyondTopBucketClampsAndStaysCumulative) {
  LatencyHistogram hist;
  const double beyond =
      LatencyHistogram::BucketLowerMs(LatencyHistogram::kBucketCount - 1) *
      1e6;
  hist.Record(beyond);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.max_ms(), beyond);
  // The overflow sample sits in the last stored bucket, so the top
  // doubling's cumulative count covers it and the quantile clamps to the
  // observed max rather than inventing a mid-bucket estimate above it.
  const auto cumulative = hist.CumulativePerDoubling();
  EXPECT_EQ(cumulative.back(), 1u);
  EXPECT_EQ(cumulative.front(), 0u);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.99), beyond);
}

TEST(LatencyHistogramTest, SingleSampleQuantilesBothEqualTheSample) {
  LatencyHistogram hist;
  hist.Record(12.5);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.50), 12.5);
  EXPECT_DOUBLE_EQ(hist.QuantileMs(0.99), 12.5);
  const auto cumulative = hist.CumulativePerDoubling();
  std::uint64_t total = cumulative.back();
  EXPECT_EQ(total, 1u);
  // Cumulative counts never decrease.
  for (std::size_t d = 1; d < cumulative.size(); ++d) {
    EXPECT_GE(cumulative[d], cumulative[d - 1]);
  }
}

TEST(SlowLogTest, KeepsWorstNAndEvictsFastest) {
  SlowLog log(/*capacity=*/2);
  EXPECT_TRUE(log.WouldAdmit(1.0));
  log.Add({.verb = "a", .latency_ms = 10.0, .ok = true});
  log.Add({.verb = "b", .latency_ms = 30.0, .ok = true});
  // Full: only latencies beating the current fastest get in.
  EXPECT_FALSE(log.WouldAdmit(5.0));
  EXPECT_TRUE(log.WouldAdmit(20.0));
  log.Add({.verb = "c", .latency_ms = 20.0, .ok = false});
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].verb, "b");  // slowest first
  EXPECT_EQ(entries[1].verb, "c");
  EXPECT_FALSE(entries[1].ok);
}

TEST(SlowLogTest, ZeroCapacityAdmitsNothing) {
  SlowLog log(0);
  EXPECT_FALSE(log.WouldAdmit(1e9));
  log.Add({.verb = "a", .latency_ms = 1e9, .ok = true});
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SlowLogTest, TiesKeepTheOlderEntry) {
  SlowLog log(1);
  log.Add({.verb = "first", .latency_ms = 10.0, .ok = true});
  log.Add({.verb = "second", .latency_ms = 10.0, .ok = true});
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].verb, "first");
}

TEST(VerbMetricsTest, SnapshotPartitionsByVerbAndCountsErrors) {
  VerbMetrics metrics;
  metrics.Record("motifs", 10.0, true);
  metrics.Record("motifs", 20.0, true);
  metrics.Record("motifs", 30.0, false);
  metrics.Record("stats", 0.5, true);
  const auto snapshot = metrics.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  // Sorted by verb name.
  EXPECT_EQ(snapshot[0].verb, "motifs");
  EXPECT_EQ(snapshot[1].verb, "stats");
  EXPECT_EQ(snapshot[0].count, 3u);
  EXPECT_EQ(snapshot[0].errors, 1u);  // latency recorded either way
  EXPECT_DOUBLE_EQ(snapshot[0].mean_ms, 20.0);
  EXPECT_DOUBLE_EQ(snapshot[0].min_ms, 10.0);
  EXPECT_DOUBLE_EQ(snapshot[0].max_ms, 30.0);
  EXPECT_GT(snapshot[0].p50_ms, 0.0);
  EXPECT_GE(snapshot[0].p99_ms, snapshot[0].p50_ms);
  EXPECT_EQ(snapshot[1].count, 1u);
  EXPECT_EQ(snapshot[1].errors, 0u);
  EXPECT_GT(snapshot[0].requests_per_second, 0.0);
  EXPECT_GT(metrics.UptimeSeconds(), 0.0);
}

TEST(VerbMetricsTest, ConcurrentRecordsAreSafeAndComplete) {
  VerbMetrics metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Record(t % 2 == 0 ? "a" : "b", 1.0 + i, i % 10 == 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snapshot = metrics.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].count + snapshot[1].count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace valmod::service
