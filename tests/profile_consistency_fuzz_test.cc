// Cross-algorithm consistency fuzz: on randomly drawn workloads, the four
// independent fixed-length implementations — brute force, STOMP (serial and
// parallel), STAMP, and the streaming profile — must produce the same
// matrix profile. Any kernel/convention drift between them fails here.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "mp/brute_force.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "mp/streaming.h"
#include "series/generators.h"

namespace valmod::mp {
namespace {

const char* const kGenerators[] = {"random_walk", "sine",       "ecg",
                                   "astro",       "entomology", "seismic"};

class ProfileConsistencyFuzzTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileConsistencyFuzzTest, AllImplementationsAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 7);
  const std::string generator = kGenerators[rng.UniformInt(0, 5)];
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(150, 450));
  const std::size_t length =
      static_cast<std::size_t>(rng.UniformInt(4, 48));
  SCOPED_TRACE("generator=" + generator + " n=" + std::to_string(n) +
               " l=" + std::to_string(length));

  auto series = synth::ByName(generator, n, seed);
  ASSERT_TRUE(series.ok());

  auto brute = ComputeBruteForce(*series, length, {});
  ASSERT_TRUE(brute.ok());
  auto stomp = ComputeStomp(*series, length, {});
  ASSERT_TRUE(stomp.ok());
  ProfileOptions threaded;
  threaded.num_threads = 3;
  auto stomp_mt = ComputeStomp(*series, length, threaded);
  ASSERT_TRUE(stomp_mt.ok());
  auto stamp = ComputeStamp(*series, length, {});
  ASSERT_TRUE(stamp.ok());
  auto stream = StreamingProfile::Create(length);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->AppendAll(series->values()).ok());

  ASSERT_EQ(stomp->size(), brute->size());
  ASSERT_EQ(stamp->size(), brute->size());
  ASSERT_EQ(stream->ProfileSnapshot().size(), brute->size());
  for (std::size_t i = 0; i < brute->size(); ++i) {
    EXPECT_NEAR(stomp->distances[i], brute->distances[i], 3e-5) << i;
    EXPECT_DOUBLE_EQ(stomp_mt->distances[i], stomp->distances[i]) << i;
    EXPECT_NEAR(stamp->distances[i], brute->distances[i], 3e-5) << i;
    EXPECT_NEAR(stream->ProfileSnapshot().distances[i], brute->distances[i], 3e-5)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileConsistencyFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace valmod::mp
