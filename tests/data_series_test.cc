// Tests for the DataSeries container.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "series/data_series.h"

namespace valmod::series {
namespace {

TEST(DataSeriesTest, CreateValidates) {
  EXPECT_FALSE(DataSeries::Create({}).ok());
  EXPECT_FALSE(DataSeries::Create({1.0, std::nan("")}).ok());
  EXPECT_TRUE(DataSeries::Create({1.0}).ok());
}

TEST(DataSeriesTest, ExposesValues) {
  auto series = DataSeries::Create({1.0, 2.0, 3.0});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 3u);
  EXPECT_DOUBLE_EQ(series->values()[1], 2.0);
}

TEST(DataSeriesTest, CenteredHasZeroMean) {
  auto series = DataSeries::Create({10.0, 20.0, 30.0, 40.0});
  ASSERT_TRUE(series.ok());
  double sum = 0.0;
  for (double c : series->centered()) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(series->centered()[0], -15.0);
}

TEST(DataSeriesTest, NumSubsequences) {
  auto series = DataSeries::Create(std::vector<double>(100, 0.0));
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->NumSubsequences(1), 100u);
  EXPECT_EQ(series->NumSubsequences(100), 1u);
  EXPECT_EQ(series->NumSubsequences(101), 0u);
  EXPECT_EQ(series->NumSubsequences(0), 0u);
}

TEST(DataSeriesTest, SubsequenceCopies) {
  auto series = DataSeries::Create({1.0, 2.0, 3.0, 4.0, 5.0});
  ASSERT_TRUE(series.ok());
  auto sub = series->Subsequence(1, 3);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(*sub, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(DataSeriesTest, SubsequenceBoundsChecked) {
  auto series = DataSeries::Create({1.0, 2.0, 3.0});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->Subsequence(2, 2).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(series->Subsequence(0, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(series->Subsequence(0, 3).ok());
}

TEST(DataSeriesTest, PrefixSnippets) {
  auto series = DataSeries::Create({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(series.ok());
  auto prefix = series->Prefix(2);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->size(), 2u);
  EXPECT_DOUBLE_EQ(prefix->values()[1], 2.0);
  EXPECT_FALSE(series->Prefix(0).ok());
  EXPECT_FALSE(series->Prefix(5).ok());
  EXPECT_TRUE(series->Prefix(4).ok());
}

TEST(DataSeriesTest, PrefixRebuildStats) {
  // Prefix statistics must describe the prefix, not the original.
  auto series = DataSeries::Create({0.0, 0.0, 100.0, 100.0});
  ASSERT_TRUE(series.ok());
  auto prefix = series->Prefix(2);
  ASSERT_TRUE(prefix.ok());
  EXPECT_DOUBLE_EQ(prefix->stats().Mean(0, 2), 0.0);
  EXPECT_TRUE(prefix->stats().IsConstant(0, 2));
}

TEST(DataSeriesTest, CloneIsDeepAndEqual) {
  auto series = DataSeries::Create({5.0, 6.0, 7.0});
  ASSERT_TRUE(series.ok());
  DataSeries clone = series->Clone();
  EXPECT_EQ(clone.size(), series->size());
  EXPECT_DOUBLE_EQ(clone.values()[2], 7.0);
  EXPECT_NE(clone.values().data(), series->values().data());
}

}  // namespace
}  // namespace valmod::series
