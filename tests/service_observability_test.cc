// Observability surface tests: the `metrics` verb's OpenMetrics exposition
// (validated by an in-test syntax checker — no network or scrape-tool
// dependencies), counter monotonicity across scrapes, end-to-end request
// tracing ("trace":true span trees whose stage spans account for the
// request's wall time), the slow-query log, the flight counters in
// `stats`, and a real-binary smoke of the new verbs plus --log-json.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace.h"
#include "service/openmetrics.h"
#include "service/server.h"

namespace valmod::service {
namespace {

using json::Value;

Value Roundtrip(Service& service, const std::string& line) {
  const std::string response = service.HandleRequestLine(line);
  auto parsed = json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << "unparseable response: " << response;
  return parsed.ok() ? *parsed : Value();
}

bool Ok(const Value& response) { return response.GetBool("ok", false); }

void LoadBench(Service& service, std::size_t n = 4096) {
  Value load = Roundtrip(
      service,
      R"({"verb":"load","dataset":"bench","params":{"generator":"ecg","n":)" +
          std::to_string(n) + "}}");
  ASSERT_TRUE(Ok(load)) << load.Serialize();
}

/// Minimal in-test OpenMetrics validator. Enforces the structural rules a
/// scraper depends on: every sample belongs to a family declared by a
/// preceding `# TYPE` line (with the counter `_total` / histogram
/// `_bucket|_sum|_count` suffix conventions), every value parses as a
/// number, the exposition ends with `# EOF`, and nothing follows it.
std::vector<std::string> ValidateOpenMetrics(const std::string& body) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> families;  // name -> type
  std::vector<std::string> lines;
  std::size_t start = 0, newline;
  while ((newline = body.find('\n', start)) != std::string::npos) {
    lines.push_back(body.substr(start, newline - start));
    start = newline + 1;
  }
  if (start != body.size()) errors.push_back("missing trailing newline");
  if (lines.empty() || lines.back() != "# EOF") {
    errors.push_back("exposition must end with '# EOF'");
    return errors;
  }
  const auto matches_family = [&](const std::string& name) {
    const auto direct = families.find(name);
    if (direct != families.end()) return direct->second == "gauge";
    for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string family = name.substr(0, name.size() - s.size());
        const auto it = families.find(family);
        if (it == families.end()) continue;
        if (s == "_total") return it->second == "counter";
        return it->second == "histogram";
      }
    }
    return false;
  };
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) {
      errors.push_back("blank line at " + std::to_string(i));
      continue;
    }
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string::npos) {
          errors.push_back("malformed TYPE line: " + line);
          continue;
        }
        families[rest.substr(0, space)] = rest.substr(space + 1);
      }
      continue;  // HELP/UNIT/comments are legal and unchecked
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find('{');
    std::string labels;
    std::size_t value_begin;
    if (name_end != std::string::npos) {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != ' ') {
        errors.push_back("malformed labels: " + line);
        continue;
      }
      labels = line.substr(name_end, close - name_end + 1);
      value_begin = close + 2;
    } else {
      name_end = line.find(' ');
      if (name_end == std::string::npos) {
        errors.push_back("no value: " + line);
        continue;
      }
      value_begin = name_end + 1;
    }
    const std::string name = line.substr(0, name_end);
    if (!matches_family(name)) {
      errors.push_back("sample without matching TYPE: " + name);
    }
    const std::string value = line.substr(value_begin);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    if (end == value.c_str() ||
        (*end != '\0' && std::string(end) != "+Inf")) {
      if (value != "+Inf") {
        errors.push_back("unparseable value '" + value + "' in: " + line);
      }
    }
  }
  return errors;
}

/// Extracts the scraped value of `sample` (exact name-plus-labels match),
/// or -1 when the series is absent.
double MetricValue(const std::string& body, const std::string& sample) {
  const std::string prefix = sample + " ";
  std::size_t pos;
  if (body.rfind(prefix, 0) == 0) {
    pos = 0;
  } else {
    pos = body.find("\n" + prefix);
    if (pos == std::string::npos) return -1.0;
    ++pos;
  }
  return std::strtod(body.c_str() + pos + prefix.size(), nullptr);
}

/// All `name{labels} value` samples in the exposition, for monotonicity
/// comparison across scrapes.
std::map<std::string, double> AllSamples(const std::string& body) {
  std::map<std::string, double> out;
  std::size_t start = 0, newline;
  while ((newline = body.find('\n', start)) != std::string::npos) {
    const std::string line = body.substr(start, newline - start);
    start = newline + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t brace = line.find('{');
    std::size_t space;
    if (brace != std::string::npos) {
      space = line.find("} ", brace);
      if (space == std::string::npos) continue;
      ++space;
    } else {
      space = line.find(' ');
      if (space == std::string::npos) continue;
    }
    out[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return out;
}

std::string ScrapeMetrics(Service& service) {
  Value response = Roundtrip(service, R"({"verb":"metrics"})");
  EXPECT_TRUE(Ok(response)) << response.Serialize();
  const Value* result = response.Find("result");
  if (result == nullptr) return "";
  EXPECT_EQ(result->GetString("format", ""), "openmetrics");
  return result->GetString("body", "");
}

TEST(OpenMetricsTest, ExpositionIsValidAndCarriesEngineAndVerbSeries) {
  trace::SetEnabled(true);
  Service service;
  LoadBench(service);
  const std::string motifs =
      R"({"verb":"motifs","dataset":"bench","params":{"lmin":64,"lmax":66}})";
  ASSERT_TRUE(Ok(Roundtrip(service, motifs)));  // miss: computes
  ASSERT_TRUE(Ok(Roundtrip(service, motifs)));  // hit
  // VALMOD's initial scan is a fused STOMP sweep that bypasses the MASS
  // kernels (and the default profile algorithm is STOMP too); STAMP runs
  // every row through the engine, so this is the request that guarantees
  // non-zero engine row counters below.
  ASSERT_TRUE(Ok(Roundtrip(
      service,
      R"({"verb":"profile","dataset":"bench","params":{"l":64,"algo":"stamp"}})")));

  const std::string body = ScrapeMetrics(service);
  ASSERT_FALSE(body.empty());
  const std::vector<std::string> errors = ValidateOpenMetrics(body);
  EXPECT_TRUE(errors.empty()) << errors.front() << " (of " << errors.size()
                              << " errors)";

  // Per-verb request counters and latency histogram buckets.
  EXPECT_GE(MetricValue(body, "valmod_requests_total{verb=\"motifs\"}"), 2.0);
  EXPECT_GE(MetricValue(
                body,
                "valmod_request_latency_seconds_bucket{verb=\"motifs\","
                "le=\"+Inf\"}"),
            2.0);
  EXPECT_GE(MetricValue(body,
                        "valmod_request_latency_seconds_count{verb=\"motifs\"}"),
            2.0);

  // Result-cache counters: one miss, one hit, one flight led.
  EXPECT_GE(MetricValue(body, "valmod_result_cache_hits_total"), 1.0);
  EXPECT_GE(MetricValue(body, "valmod_result_cache_misses_total"), 1.0);
  EXPECT_GE(MetricValue(body, "valmod_result_cache_flights_led_total"), 1.0);

  // Engine telemetry: the computed request pushed rows through some
  // backend, and the engine cache counters are exposed (process-wide).
  double rows = 0.0;
  for (const char* backend :
       {"direct", "fft_single", "fft_pair", "overlap_save"}) {
    const double v = MetricValue(
        body, std::string("valmod_engine_rows_total{backend=\"") + backend +
                  "\"}");
    EXPECT_GE(v, 0.0) << backend;
    rows += v;
  }
  EXPECT_GT(rows, 0.0);
  EXPECT_GE(MetricValue(body, "valmod_engine_series_spectra_hits_total"), 0.0);
  EXPECT_GE(MetricValue(body, "valmod_fft_plan_hits_total"), 0.0);
  EXPECT_NE(body.find("valmod_simd_kernel_calls_total{target="),
            std::string::npos);
  EXPECT_NE(body.find("valmod_build_info{simd_target="), std::string::npos);
}

TEST(OpenMetricsTest, CountersAreMonotonicAcrossScrapes) {
  Service service;
  LoadBench(service);
  ASSERT_TRUE(Ok(Roundtrip(
      service,
      R"({"verb":"profile","dataset":"bench","params":{"l":64}})")));
  const std::string first = ScrapeMetrics(service);
  // More traffic between scrapes, including a repeat (cache hit).
  ASSERT_TRUE(Ok(Roundtrip(
      service,
      R"({"verb":"profile","dataset":"bench","params":{"l":64}})")));
  ASSERT_TRUE(Ok(Roundtrip(
      service,
      R"({"verb":"profile","dataset":"bench","params":{"l":72}})")));
  const std::string second = ScrapeMetrics(service);

  const auto before = AllSamples(first);
  const auto after = AllSamples(second);
  std::size_t compared = 0;
  for (const auto& [sample, value] : before) {
    // Counter samples only; gauges (queue depth, entries) may go anywhere.
    if (sample.find("_total") == std::string::npos &&
        sample.find("_bucket") == std::string::npos &&
        sample.find("_count") == std::string::npos) {
      continue;
    }
    const auto it = after.find(sample);
    ASSERT_NE(it, after.end()) << "series vanished: " << sample;
    EXPECT_GE(it->second, value) << "counter went backwards: " << sample;
    ++compared;
  }
  EXPECT_GT(compared, 50u);  // the exposition is substantial
  EXPECT_GT(after.at("valmod_requests_total{verb=\"profile\"}"),
            before.at("valmod_requests_total{verb=\"profile\"}"));
}

TEST(TracingTest, TracedRequestSpansAccountForWallTime) {
  trace::SetEnabled(true);
  Service service;
  LoadBench(service, 8192);
  Value response = Roundtrip(
      service,
      R"({"verb":"motifs","dataset":"bench",)"
      R"("params":{"lmin":128,"lmax":132},"trace":true})");
  ASSERT_TRUE(Ok(response)) << response.Serialize();

  const std::string trace_id = response.GetString("trace_id", "");
  ASSERT_EQ(trace_id.size(), 16u);
  for (const char c : trace_id) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << trace_id;
  }

  const Value* trace = response.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->GetNumber("wall_ns", 0), 0.0);
  const Value* spans = trace->Find("spans");
  ASSERT_NE(spans, nullptr);
  const auto& list = spans->AsArray();
  ASSERT_GE(list.size(), 4u);
  EXPECT_EQ(list[0].GetString("name", ""), "request");
  EXPECT_DOUBLE_EQ(list[0].GetNumber("parent", 0), -1.0);

  // The stage spans parented directly under the root — parse, plan,
  // cache_lookup, queue_wait, compute — cover the request end to end, so
  // their durations must sum to within 10% of the root's wall time.
  double child_sum_ns = 0.0;
  bool saw_compute = false, saw_parse = false, saw_queue_wait = false;
  for (std::size_t i = 1; i < list.size(); ++i) {
    const std::string name = list[i].GetString("name", "");
    if (list[i].GetNumber("parent", -1) == 0.0) {
      child_sum_ns += list[i].GetNumber("duration_ns", 0);
    }
    saw_compute |= name == "compute";
    saw_parse |= name == "parse";
    saw_queue_wait |= name == "queue_wait";
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_queue_wait);
  const double root_ns = list[0].GetNumber("duration_ns", 0);
  ASSERT_GT(root_ns, 0.0);
  EXPECT_GE(child_sum_ns, 0.90 * root_ns)
      << "stage spans cover only " << (child_sum_ns / root_ns * 100.0)
      << "% of the request";
  EXPECT_LE(child_sum_ns, 1.10 * root_ns);

  // Untraced requests must not carry the fields.
  Value untraced = Roundtrip(
      service,
      R"({"verb":"motifs","dataset":"bench",)"
      R"("params":{"lmin":128,"lmax":132}})");
  ASSERT_TRUE(Ok(untraced));
  EXPECT_EQ(untraced.Find("trace_id"), nullptr);
  EXPECT_EQ(untraced.Find("trace"), nullptr);
}

TEST(TracingTest, ErrorResponsesCarryTraceWhenRequested) {
  trace::SetEnabled(true);
  Service service;
  Value response = Roundtrip(
      service, R"({"verb":"motifs","dataset":"missing","trace":true})");
  EXPECT_FALSE(Ok(response));
  EXPECT_EQ(response.GetString("trace_id", "").size(), 16u);
  EXPECT_NE(response.Find("trace"), nullptr);
  // A non-boolean trace param is a type error like any other envelope field.
  Value bad = Roundtrip(service, R"({"verb":"stats","trace":"yes"})");
  EXPECT_FALSE(Ok(bad));
}

TEST(SlowlogVerbTest, ReturnsWorstRequestsSlowestFirstWithTraces) {
  trace::SetEnabled(true);
  ServiceOptions options;
  options.slowlog_capacity = 4;
  Service service(options);
  LoadBench(service);
  ASSERT_TRUE(Ok(Roundtrip(
      service,
      R"({"verb":"motifs","dataset":"bench","params":{"lmin":64,"lmax":66}})")));
  ASSERT_TRUE(Ok(Roundtrip(service, R"({"verb":"stats"})")));

  Value response = Roundtrip(service, R"({"verb":"slowlog"})");
  ASSERT_TRUE(Ok(response)) << response.Serialize();
  const Value* entries = response.Find("result")->Find("entries");
  ASSERT_NE(entries, nullptr);
  const auto& list = entries->AsArray();
  ASSERT_GE(list.size(), 2u);
  double previous = 1e300;
  for (const Value& entry : list) {
    const double latency = entry.GetNumber("latency_ms", -1);
    EXPECT_GE(latency, 0.0);
    EXPECT_LE(latency, previous);  // slowest first
    previous = latency;
    EXPECT_FALSE(entry.GetString("verb", "").empty());
    EXPECT_EQ(entry.GetString("trace_id", "").size(), 16u);
    EXPECT_NE(entry.Find("trace"), nullptr);
  }
  // The motifs compute is slow enough to be retained (whether load's data
  // generation or the compute lands first is timing, not contract).
  bool saw_motifs = false;
  for (const Value& entry : list) {
    saw_motifs = saw_motifs || entry.GetString("verb", "") == "motifs";
  }
  EXPECT_TRUE(saw_motifs);
}

TEST(StatsVerbTest, ExposesFlightCounters) {
  Service service;
  LoadBench(service);
  const std::string request =
      R"({"verb":"profile","dataset":"bench","params":{"l":64}})";
  ASSERT_TRUE(Ok(Roundtrip(service, request)));  // miss: leads a flight
  ASSERT_TRUE(Ok(Roundtrip(service, request)));  // hit
  Value stats = Roundtrip(service, R"({"verb":"stats"})");
  ASSERT_TRUE(Ok(stats));
  const Value* cache = stats.Find("result")->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->GetNumber("flights_led", -1), 1.0);
  EXPECT_GE(cache->GetNumber("waiters_served", -1), 0.0);
}

TEST(RenderTraceJsonTest, SerializesSpanTree) {
  trace::TraceContext context;
  const int root = context.BeginSpan("request", -1);
  const int child = context.BeginSpan("parse", root);
  context.EndSpan(child);
  context.EndSpan(root);
  const std::string rendered = RenderTraceJson(context);
  auto parsed = json::Parse(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered;
  EXPECT_EQ(parsed->GetNumber("dropped", -1), 0.0);
  const auto& spans = parsed->Find("spans")->AsArray();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].GetString("name", ""), "request");
  EXPECT_EQ(spans[1].GetString("name", ""), "parse");
  EXPECT_DOUBLE_EQ(spans[1].GetNumber("parent", -1), 0.0);
}

#ifdef VALMOD_SERVER_BINARY
// Real-binary smoke: the new verbs through the full --stdio main() path,
// with the exposition validated by the same in-test checker.
TEST(ServerBinaryObservabilityTest, MetricsAndSlowlogOverStdio) {
  const std::string script =
      R"({"id":1,"verb":"load","dataset":"d","params":{"generator":"ecg","n":1024}})" "\n"
      R"({"id":2,"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":34},"trace":true})" "\n"
      R"({"id":3,"verb":"metrics"})" "\n"
      R"({"id":4,"verb":"slowlog"})" "\n"
      R"({"id":5,"verb":"shutdown"})" "\n";
  const std::string command = std::string("printf '%s' '") + script +
                              "' | " + VALMOD_SERVER_BINARY +
                              " --stdio 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  EXPECT_EQ(pclose(pipe), 0);

  std::vector<std::string> lines;
  std::size_t start = 0, newline;
  while ((newline = output.find('\n', start)) != std::string::npos) {
    lines.push_back(output.substr(start, newline - start));
    start = newline + 1;
  }
  ASSERT_EQ(lines.size(), 5u) << output;
  auto parse = [](const std::string& line) {
    auto v = json::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    return v.ok() ? *v : Value();
  };
  EXPECT_TRUE(parse(lines[0]).GetBool("ok", false));
  Value motifs = parse(lines[1]);
  EXPECT_TRUE(motifs.GetBool("ok", false));
  EXPECT_EQ(motifs.GetString("trace_id", "").size(), 16u);
  Value metrics = parse(lines[2]);
  ASSERT_TRUE(metrics.GetBool("ok", false));
  const std::string body = metrics.Find("result")->GetString("body", "");
  const auto errors = ValidateOpenMetrics(body);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_GE(MetricValue(body, "valmod_requests_total{verb=\"motifs\"}"), 1.0);
  Value slowlog = parse(lines[3]);
  EXPECT_TRUE(slowlog.GetBool("ok", false));
  EXPECT_FALSE(
      slowlog.Find("result")->Find("entries")->AsArray().empty());
  EXPECT_TRUE(parse(lines[4]).GetBool("ok", false));
}

// --log-json turns stderr into one JSON object per line.
TEST(ServerBinaryObservabilityTest, LogJsonEmitsStructuredStderr) {
  const std::string command =
      std::string("printf '%s' '{\"verb\":\"shutdown\"}\n' | ") +
      VALMOD_SERVER_BINARY +
      " --stdio --log-json --preload=d --generate=ecg --n=512 2>&1 "
      ">/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  EXPECT_EQ(pclose(pipe), 0);
  ASSERT_FALSE(output.empty());
  const std::string first_line = output.substr(0, output.find('\n'));
  auto event = json::Parse(first_line);
  ASSERT_TRUE(event.ok()) << first_line;
  EXPECT_EQ(event->GetString("level", ""), "info");
  EXPECT_EQ(event->GetString("msg", ""), "preloaded dataset");
  EXPECT_EQ(event->GetString("dataset", ""), "d");
}
#endif  // VALMOD_SERVER_BINARY

}  // namespace
}  // namespace valmod::service
