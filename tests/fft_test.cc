// Tests for the FFT engine: transform correctness, convolution, and the
// sliding-dot-product kernel used by MASS.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"

namespace valmod::fft {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_EQ(Transform(data, Direction::kForward).code(),
            StatusCode::kInvalidArgument);
}

TEST(FftTest, SizeOneIsIdentity) {
  std::vector<std::complex<double>> data = {{3.0, -1.0}};
  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  EXPECT_DOUBLE_EQ(data[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(data[0].imag(), -1.0);
}

TEST(FftTest, MatchesAnalyticDftOfImpulse) {
  // DFT of a unit impulse is all-ones.
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(3);
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  std::vector<std::complex<double>> expected(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += data[t] * std::complex<double>(std::cos(angle),
                                            std::sin(angle));
    }
    expected[k] = acc;
  }
  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-9);
  }
}

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, ForwardInverseReproducesInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  const std::vector<std::complex<double>> original = data;

  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  ASSERT_TRUE(Transform(data, Direction::kInverse).ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST_P(FftRoundTripTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.Gaussian(), rng.Gaussian()};
    time_energy += std::norm(x);
  }
  ASSERT_TRUE(Transform(data, Direction::kForward).ok());
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-7 * time_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024, 4096));

TEST(ConvolveTest, RejectsEmptyInputs) {
  std::vector<double> a = {1.0};
  std::vector<double> empty;
  EXPECT_FALSE(Convolve(empty, a).ok());
  EXPECT_FALSE(Convolve(a, empty).ok());
}

TEST(ConvolveTest, KnownSmallConvolution) {
  // [1, 2] * [3, 4, 5] = [3, 10, 13, 10].
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {3.0, 4.0, 5.0};
  auto result = Convolve(a, b);
  ASSERT_TRUE(result.ok());
  const std::vector<double> expected = {3.0, 10.0, 13.0, 10.0};
  ASSERT_EQ(result->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*result)[i], expected[i], 1e-10);
  }
}

struct ConvolveCase {
  std::size_t len_a;
  std::size_t len_b;
};

class ConvolveRandomTest : public ::testing::TestWithParam<ConvolveCase> {};

TEST_P(ConvolveRandomTest, MatchesNaiveConvolution) {
  const auto [len_a, len_b] = GetParam();
  Rng rng(len_a * 131 + len_b);
  std::vector<double> a(len_a), b(len_b);
  for (auto& x : a) x = rng.Gaussian();
  for (auto& x : b) x = rng.Gaussian();

  auto result = Convolve(a, b);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), len_a + len_b - 1);
  for (std::size_t k = 0; k < result->size(); ++k) {
    double expected = 0.0;
    for (std::size_t i = 0; i < len_a; ++i) {
      if (k >= i && k - i < len_b) expected += a[i] * b[k - i];
    }
    EXPECT_NEAR((*result)[k], expected, 1e-8)
        << "k=" << k << " len_a=" << len_a << " len_b=" << len_b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvolveRandomTest,
    ::testing::Values(ConvolveCase{1, 1}, ConvolveCase{5, 3},
                      ConvolveCase{16, 16}, ConvolveCase{100, 7},
                      ConvolveCase{63, 65}, ConvolveCase{256, 1}));

struct SlidingCase {
  std::size_t series_len;
  std::size_t query_len;
};

class SlidingDotTest : public ::testing::TestWithParam<SlidingCase> {};

TEST_P(SlidingDotTest, MatchesNaiveDotProducts) {
  const auto [series_len, query_len] = GetParam();
  Rng rng(series_len * 17 + query_len);
  std::vector<double> series(series_len), query(query_len);
  for (auto& x : series) x = rng.Gaussian();
  for (auto& x : query) x = rng.Gaussian();

  auto result = SlidingDotProducts(series, query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), series_len - query_len + 1);
  for (std::size_t i = 0; i + query_len <= series_len; ++i) {
    double expected = 0.0;
    for (std::size_t t = 0; t < query_len; ++t) {
      expected += query[t] * series[i + t];
    }
    EXPECT_NEAR((*result)[i], expected, 1e-8 * (1.0 + std::abs(expected)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingDotTest,
    ::testing::Values(SlidingCase{1, 1}, SlidingCase{10, 1},
                      SlidingCase{10, 10}, SlidingCase{100, 3},
                      SlidingCase{1000, 100}, SlidingCase{777, 33}));

TEST(SlidingDotTest, RejectsQueryLongerThanSeries) {
  std::vector<double> series(5, 1.0), query(6, 1.0);
  EXPECT_EQ(SlidingDotProducts(series, query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SlidingDotTest, RejectsEmpty) {
  std::vector<double> series(5, 1.0), empty;
  EXPECT_FALSE(SlidingDotProducts(series, empty).ok());
  EXPECT_FALSE(SlidingDotProducts(empty, empty).ok());
}

}  // namespace
}  // namespace valmod::fft
