// Tests for z-normalization conventions and the shared distance kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "series/data_series.h"
#include "series/znorm.h"

namespace valmod::series {
namespace {

TEST(ZNormalizeTest, ProducesZeroMeanUnitStd) {
  Rng rng(3);
  std::vector<double> window(50);
  for (auto& x : window) x = 2.0 + 3.0 * rng.Gaussian();
  auto z = ZNormalize(window);
  ASSERT_TRUE(z.ok());
  double sum = 0.0, sum_sq = 0.0;
  for (double v : *z) {
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / 50.0, 0.0, 1e-10);
  EXPECT_NEAR(sum_sq / 50.0, 1.0, 1e-10);
}

TEST(ZNormalizeTest, ConstantMapsToZeros) {
  auto z = ZNormalize(std::vector<double>(10, 4.2));
  ASSERT_TRUE(z.ok());
  for (double v : *z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNormalizeTest, RejectsEmpty) { EXPECT_FALSE(ZNormalize({}).ok()); }

TEST(ZNormalizeTest, InvariantToAffineTransform) {
  Rng rng(7);
  std::vector<double> window(32), scaled(32);
  for (std::size_t i = 0; i < 32; ++i) {
    window[i] = rng.Gaussian();
    scaled[i] = 5.0 * window[i] - 11.0;
  }
  auto za = ZNormalize(window);
  auto zb = ZNormalize(scaled);
  ASSERT_TRUE(za.ok());
  ASSERT_TRUE(zb.ok());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR((*za)[i], (*zb)[i], 1e-9);
  }
}

TEST(ZNormalizedDistanceTest, IdenticalWindowsAtZero) {
  std::vector<double> a = {1.0, 2.0, 3.0, 2.0};
  auto d = ZNormalizedDistance(a, a);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
}

TEST(ZNormalizedDistanceTest, BothConstantIsZero) {
  std::vector<double> a(8, 1.0), b(8, 99.0);
  auto d = ZNormalizedDistance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(ZNormalizedDistanceTest, OneConstantIsSqrtLength) {
  std::vector<double> a(16, 1.0);
  Rng rng(1);
  std::vector<double> b(16);
  for (auto& x : b) x = rng.Gaussian();
  auto d = ZNormalizedDistance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 4.0, 1e-9);  // sqrt(16)
}

TEST(ZNormalizedDistanceTest, RejectsMismatchedLengths) {
  std::vector<double> a(5, 0.0), b(6, 0.0);
  EXPECT_FALSE(ZNormalizedDistance(a, b).ok());
  EXPECT_FALSE(ZNormalizedDistance({}, {}).ok());
}

TEST(ZNormalizedDistanceTest, AntiCorrelatedReachesMaximum) {
  // Perfectly anti-correlated windows have rho = -1 => d = sqrt(4l) = 2*sqrt(l).
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(-i));
  }
  auto d = ZNormalizedDistance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 2.0 * std::sqrt(20.0), 1e-9);
}

TEST(KernelTest, DistanceFromCorrelationEndpoints) {
  EXPECT_NEAR(DistanceFromCorrelation(1.0, 100), 0.0, 1e-12);
  EXPECT_NEAR(DistanceFromCorrelation(0.0, 100), std::sqrt(200.0), 1e-12);
  EXPECT_NEAR(DistanceFromCorrelation(-1.0, 100), 20.0, 1e-12);
}

TEST(KernelTest, CorrelationFromDotClamps) {
  // Construct values that would round slightly past 1.
  const double rho =
      CorrelationFromDot(/*dot=*/10.0000001, /*mean_a=*/0.0, /*mean_b=*/0.0,
                         /*std_a=*/1.0, /*std_b=*/1.0, /*length=*/10);
  EXPECT_LE(rho, 1.0);
  EXPECT_GE(rho, -1.0);
}

TEST(KernelTest, PairDistanceMatchesDefinition) {
  // The O(1) kernel must agree with the O(l) definitional path.
  Rng rng(17);
  std::vector<double> data(200);
  for (auto& x : data) x = rng.Gaussian();
  auto series = DataSeries::Create(data);
  ASSERT_TRUE(series.ok());
  const auto& stats = series->stats();
  const auto c = series->centered();
  const std::size_t length = 32;
  for (std::size_t a : {0u, 10u, 100u}) {
    for (std::size_t b : {50u, 120u, 168u}) {
      double dot = 0.0;
      for (std::size_t t = 0; t < length; ++t) dot += c[a + t] * c[b + t];
      const double kernel = PairDistanceFromDot(
          dot, stats.CenteredMean(a, length), stats.CenteredMean(b, length),
          stats.StdDev(a, length), stats.StdDev(b, length), length, false,
          false);
      auto reference = SubsequenceDistance(*series, a, b, length);
      ASSERT_TRUE(reference.ok());
      EXPECT_NEAR(kernel, *reference, 1e-8);
    }
  }
}

TEST(KernelTest, PairDistanceConstantConventions) {
  EXPECT_DOUBLE_EQ(
      PairDistanceFromDot(0.0, 0.0, 0.0, 0.0, 1.0, 25, true, false), 5.0);
  EXPECT_DOUBLE_EQ(
      PairDistanceFromDot(0.0, 0.0, 0.0, 1.0, 0.0, 25, false, true), 5.0);
  EXPECT_DOUBLE_EQ(
      PairDistanceFromDot(0.0, 0.0, 0.0, 0.0, 0.0, 25, true, true), 0.0);
}

TEST(KernelTest, LengthNormalizedDistance) {
  EXPECT_DOUBLE_EQ(LengthNormalizedDistance(10.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(LengthNormalizedDistance(10.0, 25), 2.0);
  // Longer, equally-similar pairs rank better: same raw distance, smaller
  // normalized value at the greater length.
  EXPECT_LT(LengthNormalizedDistance(5.0, 400),
            LengthNormalizedDistance(5.0, 100));
}

TEST(DotProductTest, MatchesNaiveForAllResidues) {
  // The 4-way unrolled kernel must agree with a plain loop for every
  // length residue mod 4, including the empty product.
  Rng rng(23);
  std::vector<double> a(37), b(37);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u, 37u}) {
    double expected = 0.0;
    for (std::size_t t = 0; t < n; ++t) expected += a[t] * b[t];
    EXPECT_NEAR(DotProduct(a.data(), b.data(), n), expected,
                1e-12 * (1.0 + std::abs(expected)))
        << "n=" << n;
  }
}

TEST(DotProductTest, AliasedInputsAllowed) {
  // STOMP feeds overlapping windows of the same buffer; self-overlap must
  // be handled like any other input.
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const double dot = DotProduct(data.data(), data.data() + 1, 5);
  EXPECT_DOUBLE_EQ(dot, 1 * 2 + 2 * 3 + 3 * 4 + 4 * 5 + 5 * 6);
}

TEST(SubsequenceDistanceTest, BoundsChecked) {
  auto series = DataSeries::Create({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(series.ok());
  EXPECT_FALSE(SubsequenceDistance(*series, 0, 3, 3).ok());
  EXPECT_TRUE(SubsequenceDistance(*series, 0, 2, 2).ok());
}

}  // namespace
}  // namespace valmod::series
