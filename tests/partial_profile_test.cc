// Tests for the partial distance profile storage (p best-LB entries per
// subsequence).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/partial_profile.h"

namespace valmod::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PartialProfileTest, KeepsSmallestBaseLbs) {
  PartialProfileSet set(1, 3, 50);
  const double lbs[] = {5.0, 1.0, 4.0, 2.0, 9.0, 3.0};
  for (int i = 0; i < 6; ++i) {
    set.Offer(0, i, /*dot=*/0.0, lbs[i]);
  }
  set.FinishSeeding(0);

  auto row = set.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0].base_lb, 1.0);
  EXPECT_DOUBLE_EQ(row[1].base_lb, 2.0);
  EXPECT_DOUBLE_EQ(row[2].base_lb, 3.0);
  EXPECT_EQ(row[0].match, 1);
  EXPECT_EQ(row[1].match, 3);
  EXPECT_EQ(row[2].match, 5);
}

TEST(PartialProfileTest, MaxBaseLbIsPthSmallestWhenFull) {
  PartialProfileSet set(1, 2, 10);
  set.Offer(0, 0, 0.0, 7.0);
  set.Offer(0, 1, 0.0, 3.0);
  set.Offer(0, 2, 0.0, 5.0);
  set.FinishSeeding(0);
  EXPECT_DOUBLE_EQ(set.max_base_lb(0), 5.0);
}

TEST(PartialProfileTest, UnderfullRowHasInfiniteBound) {
  // Fewer candidates than p: the stored set is exhaustive, so nothing is
  // unexplored and the bound must be vacuous (+inf).
  PartialProfileSet set(1, 5, 10);
  set.Offer(0, 0, 0.0, 2.0);
  set.Offer(0, 1, 0.0, 1.0);
  set.FinishSeeding(0);
  EXPECT_EQ(set.max_base_lb(0), kInf);
  EXPECT_EQ(set.Row(0).size(), 2u);
}

TEST(PartialProfileTest, RowsAreIndependent) {
  PartialProfileSet set(3, 2, 10);
  set.Offer(0, 5, 0.0, 1.0);
  set.Offer(2, 6, 0.0, 2.0);
  set.FinishSeeding(0);
  set.FinishSeeding(1);
  set.FinishSeeding(2);
  EXPECT_EQ(set.Row(0).size(), 1u);
  EXPECT_EQ(set.Row(1).size(), 0u);
  EXPECT_EQ(set.Row(2).size(), 1u);
  EXPECT_EQ(set.rows(), 3u);
  EXPECT_EQ(set.capacity_per_row(), 2u);
}

TEST(PartialProfileTest, CompactionPreservesOrder) {
  PartialProfileSet set(1, 4, 10);
  set.Offer(0, 10, 0.0, 1.0);
  set.Offer(0, 20, 0.0, 2.0);
  set.Offer(0, 30, 0.0, 3.0);
  set.Offer(0, 40, 0.0, 4.0);
  set.FinishSeeding(0);

  set.CompactRow(0, [](const Entry& e) { return e.match == 20; });
  auto row = set.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].match, 10);
  EXPECT_EQ(row[1].match, 30);
  EXPECT_EQ(row[2].match, 40);

  // The frozen bound is untouched by compaction.
  EXPECT_DOUBLE_EQ(set.max_base_lb(0), 4.0);
}

TEST(PartialProfileTest, CompactAllLeavesEmptyRow) {
  PartialProfileSet set(1, 2, 10);
  set.Offer(0, 1, 0.0, 1.0);
  set.Offer(0, 2, 0.0, 2.0);
  set.FinishSeeding(0);
  set.CompactRow(0, [](const Entry&) { return true; });
  EXPECT_EQ(set.Row(0).size(), 0u);
}

TEST(PartialProfileTest, ResetReanchorsRow) {
  PartialProfileSet set(1, 2, 10);
  set.Offer(0, 1, 0.0, 1.0);
  set.Offer(0, 2, 0.0, 2.0);
  set.FinishSeeding(0);
  EXPECT_EQ(set.base_length(0), 10u);

  set.Reset(0, 25);
  EXPECT_EQ(set.Row(0).size(), 0u);
  EXPECT_EQ(set.base_length(0), 25u);
  EXPECT_EQ(set.max_base_lb(0), kInf);

  set.Offer(0, 7, 0.0, 0.5);
  set.FinishSeeding(0);
  EXPECT_EQ(set.Row(0)[0].match, 7);
}

TEST(PartialProfileTest, MutableRowUpdatesStick) {
  PartialProfileSet set(1, 2, 10);
  set.Offer(0, 1, 5.0, 1.0);
  set.FinishSeeding(0);
  for (Entry& e : set.MutableRow(0)) {
    e.dot += 1.5;
    e.distance = 3.0;
  }
  EXPECT_DOUBLE_EQ(set.Row(0)[0].dot, 6.5);
  EXPECT_DOUBLE_EQ(set.Row(0)[0].distance, 3.0);
}

TEST(PartialProfileTest, ManyOffersStressHeap) {
  // 1000 offers into p = 8; result must be exactly the 8 smallest.
  PartialProfileSet set(1, 8, 100);
  std::vector<double> lbs;
  for (int i = 0; i < 1000; ++i) {
    const double lb = static_cast<double>((i * 7919) % 10007);
    lbs.push_back(lb);
    set.Offer(0, i, 0.0, lb);
  }
  set.FinishSeeding(0);
  std::sort(lbs.begin(), lbs.end());
  auto row = set.Row(0);
  ASSERT_EQ(row.size(), 8u);
  for (std::size_t e = 0; e < 8; ++e) {
    EXPECT_DOUBLE_EQ(row[e].base_lb, lbs[e]) << e;
  }
  EXPECT_DOUBLE_EQ(set.max_base_lb(0), lbs[7]);
}

}  // namespace
}  // namespace valmod::core
