// Parity tests for the cached MassEngine against the uncached
// mass::ComputeRowProfile / mass::DistanceProfile path: same numbers (to
// 1e-9) across lengths, offsets, constant-window rows, and the batched
// entry point.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace valmod::mass {
namespace {

using series::DataSeries;

void ExpectRowParity(const RowProfile& cached, const RowProfile& uncached,
                     std::size_t offset, std::size_t length) {
  ASSERT_EQ(cached.dots.size(), uncached.dots.size());
  ASSERT_EQ(cached.distances.size(), uncached.distances.size());
  for (std::size_t j = 0; j < cached.dots.size(); ++j) {
    EXPECT_NEAR(cached.dots[j], uncached.dots[j],
                1e-9 * (1.0 + std::abs(uncached.dots[j])))
        << "offset=" << offset << " length=" << length << " j=" << j;
    EXPECT_NEAR(cached.distances[j], uncached.distances[j], 1e-9)
        << "offset=" << offset << " length=" << length << " j=" << j;
  }
}

// Cross-backend parity: dots to relative 1e-9, distances to 1e-9 on the
// squared-distance scale (the scale the dot products live on). Comparing
// raw distances would be wrong near zero: d = sqrt(2l(1 - rho)) maps a
// rounding-level dot difference at a self-match (true distance 0) to an
// ~1e-7 absolute distance difference — sqrt amplification, not backend
// disagreement.
void ExpectCrossBackendParity(const RowProfile& got, const RowProfile& want,
                              std::size_t offset, std::size_t length) {
  ASSERT_EQ(got.dots.size(), want.dots.size());
  ASSERT_EQ(got.distances.size(), want.distances.size());
  for (std::size_t j = 0; j < got.dots.size(); ++j) {
    EXPECT_NEAR(got.dots[j], want.dots[j],
                1e-9 * (1.0 + std::abs(want.dots[j])))
        << "offset=" << offset << " length=" << length << " j=" << j;
    if (want.distances[j] == std::numeric_limits<double>::infinity()) {
      EXPECT_EQ(got.distances[j], want.distances[j]);
      continue;
    }
    EXPECT_NEAR(got.distances[j] * got.distances[j],
                want.distances[j] * want.distances[j],
                1e-8 * (1.0 + static_cast<double>(length)))
        << "offset=" << offset << " length=" << length << " j=" << j;
  }
}

class EngineParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineParityTest, MatchesUncachedAcrossOffsets) {
  const std::size_t length = GetParam();
  const std::size_t n = 2048;
  auto series = synth::ByName("ecg", n, 7);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::size_t count = series->NumSubsequences(length);
  for (std::size_t offset :
       {std::size_t{0}, count / 3, count / 2, count - 1}) {
    auto cached = engine.ComputeRowProfile(offset, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, offset, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, offset, length);
  }
}

// Lengths straddle the cost-model crossover so both the direct-dot fallback
// and the cached-FFT path are exercised (at n = 2048 the FFT path wins
// above a few hundred points).
INSTANTIATE_TEST_SUITE_P(Lengths, EngineParityTest,
                         ::testing::Values(4, 16, 64, 256, 512, 1024));

TEST(MassEngineTest, ConstantWindowRowsMatchUncached) {
  // Sine, then a flat shelf, then noise: rows inside the shelf are
  // constant-window queries, rows straddling it mix both conventions.
  Rng rng(31);
  std::vector<double> values;
  for (std::size_t i = 0; i < 200; ++i) {
    values.push_back(std::sin(0.1 * static_cast<double>(i)));
  }
  values.insert(values.end(), 100, 2.5);
  for (std::size_t i = 0; i < 200; ++i) values.push_back(rng.Gaussian());
  auto series = series::DataSeries::Create(std::move(values));
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::size_t length = 32;
  for (std::size_t offset : {std::size_t{100}, std::size_t{190},
                             std::size_t{230}, std::size_t{290},
                             std::size_t{350}}) {
    auto cached = engine.ComputeRowProfile(offset, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, offset, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, offset, length);
  }
}

// Batched rows go through the pair-packed transform (two queries per
// complex FFT, DIF bin order), while single auto calls may resolve to a
// different member of the family (at this size the batch prices out as
// pair-packed, the lone row as the half-spectrum single path). The
// mathematics agree but the floating-point evaluation order differs, so
// parity here is the cross-backend kind — dots to relative 1e-9, distances
// on the squared scale (a self-match at true distance 0 amplifies a
// rounding-level dot difference through the sqrt) — not bit-identity; that
// is inherent to packing, not a looseness in the implementation.
TEST(MassEngineTest, BatchedMatchesSingleCalls) {
  const std::size_t n = 1024;
  const std::size_t length = 512;  // FFT path at this size
  auto series = synth::ByName("random_walk", n, 3);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  // Odd row count: the tail row exercises the single-query fallback.
  const std::vector<std::size_t> rows = {0, 17, 100, 311, 500};
  auto batched = engine.ComputeRowProfiles(rows, length, /*num_threads=*/3);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto single = engine.ComputeRowProfile(rows[i], length);
    ASSERT_TRUE(single.ok());
    ExpectCrossBackendParity((*batched)[i], *single, rows[i], length);
  }
}

TEST(MassEngineTest, BatchedPairingIndependentOfThreadCount) {
  const std::size_t n = 2048;
  const std::size_t length = 1024;  // FFT path
  auto series = synth::ByName("ecg", n, 13);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r + length <= n; r += 97) rows.push_back(r);
  auto serial = engine.ComputeRowProfiles(rows, length, /*num_threads=*/1);
  auto threaded = engine.ComputeRowProfiles(rows, length, /*num_threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial->size(), threaded->size());
  // Pairing depends only on row order, so the results must be bit-equal
  // across thread counts.
  for (std::size_t i = 0; i < serial->size(); ++i) {
    ASSERT_EQ((*serial)[i].distances.size(), (*threaded)[i].distances.size());
    for (std::size_t j = 0; j < (*serial)[i].distances.size(); ++j) {
      EXPECT_EQ((*serial)[i].dots[j], (*threaded)[i].dots[j])
          << "row " << rows[i] << " j=" << j;
      EXPECT_EQ((*serial)[i].distances[j], (*threaded)[i].distances[j])
          << "row " << rows[i] << " j=" << j;
    }
  }
}

// Every backend computes the same dot products in a different evaluation
// order, so forcing each of the four against the direct-product reference
// must agree to relative 1e-9 — on plain rows, on constant-window rows,
// and for batched and single-row entry points alike.
TEST(MassEngineTest, ForcedBackendsAgreeOnBatches) {
  const std::size_t n = 2048;
  const std::size_t length = 128;
  auto series = synth::ByName("ecg", n, 17);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  // Odd row count: every family exercises its single-lane tail too.
  const std::vector<std::size_t> rows = {0, 3, 500, 501, 1000, 1500, 1900};
  auto reference =
      engine.ComputeRowProfiles(rows, length, /*num_threads=*/1,
                                ConvolutionBackend::kDirect);
  ASSERT_TRUE(reference.ok());
  for (ConvolutionBackend backend :
       {ConvolutionBackend::kDirect, ConvolutionBackend::kFftSingle,
        ConvolutionBackend::kFftPair, ConvolutionBackend::kOverlapSave}) {
    auto forced = engine.ComputeRowProfiles(rows, length, /*num_threads=*/3,
                                            backend);
    ASSERT_TRUE(forced.ok()) << ConvolutionBackendName(backend);
    ASSERT_EQ(forced->size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SCOPED_TRACE(ConvolutionBackendName(backend));
      ExpectCrossBackendParity((*forced)[i], (*reference)[i], rows[i],
                               length);
    }
  }
}

TEST(MassEngineTest, ForcedBackendsAgreeOnSingleRows) {
  const std::size_t n = 1024;
  auto series = synth::ByName("random_walk", n, 23);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  // Lengths straddle the chunk-size steps of the overlap-save path (the
  // 4*m power-of-two jump at 16 -> 17 and 128 -> 129) so queries land both
  // well inside a chunk and right at its alias boundary.
  for (std::size_t length : {std::size_t{16}, std::size_t{17},
                             std::size_t{128}, std::size_t{129},
                             std::size_t{200}}) {
    auto reference =
        engine.ComputeRowProfile(40, length, ConvolutionBackend::kDirect);
    ASSERT_TRUE(reference.ok());
    for (ConvolutionBackend backend :
         {ConvolutionBackend::kFftSingle, ConvolutionBackend::kFftPair,
          ConvolutionBackend::kOverlapSave}) {
      auto forced = engine.ComputeRowProfile(40, length, backend);
      ASSERT_TRUE(forced.ok()) << ConvolutionBackendName(backend);
      SCOPED_TRACE(ConvolutionBackendName(backend));
      ExpectCrossBackendParity(*forced, *reference, 40, length);
    }
  }
}

TEST(MassEngineTest, OverlapSaveHandlesConstantWindows) {
  // Sine, flat shelf, noise — rows inside and straddling the shelf hit the
  // constant-window distance conventions on top of the chunked dots.
  Rng rng(37);
  std::vector<double> values;
  for (std::size_t i = 0; i < 300; ++i) {
    values.push_back(std::sin(0.07 * static_cast<double>(i)));
  }
  values.insert(values.end(), 120, 1.25);
  for (std::size_t i = 0; i < 300; ++i) values.push_back(rng.Gaussian());
  auto series = series::DataSeries::Create(std::move(values));
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::size_t length = 48;
  for (std::size_t offset : {std::size_t{250}, std::size_t{310},
                             std::size_t{390}, std::size_t{500}}) {
    auto ols = engine.ComputeRowProfile(offset, length,
                                        ConvolutionBackend::kOverlapSave);
    ASSERT_TRUE(ols.ok());
    auto direct =
        engine.ComputeRowProfile(offset, length, ConvolutionBackend::kDirect);
    ASSERT_TRUE(direct.ok());
    ExpectCrossBackendParity(*ols, *direct, offset, length);
  }
}

TEST(MassEngineTest, OverlapSaveBatchesIndependentOfThreadCount) {
  const std::size_t n = 4096;
  const std::size_t length = 256;
  auto series = synth::ByName("ecg", n, 43);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r + length <= n; r += 131) rows.push_back(r);
  auto serial = engine.ComputeRowProfiles(rows, length, /*num_threads=*/1,
                                          ConvolutionBackend::kOverlapSave);
  auto threaded = engine.ComputeRowProfiles(rows, length, /*num_threads=*/4,
                                            ConvolutionBackend::kOverlapSave);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial->size(), threaded->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    for (std::size_t j = 0; j < (*serial)[i].distances.size(); ++j) {
      EXPECT_EQ((*serial)[i].dots[j], (*threaded)[i].dots[j])
          << "row " << rows[i] << " j=" << j;
      EXPECT_EQ((*serial)[i].distances[j], (*threaded)[i].distances[j])
          << "row " << rows[i] << " j=" << j;
    }
  }
}

TEST(MassEngineTest, ChunkSpectraCacheIsBounded) {
  // At ~32 bytes per series point per chunk size, a wide length sweep must
  // not pin one spectra set per power-of-two band forever. Each length
  // below maps to a distinct chunk size (4x, next power of two), and the
  // results must stay correct across evictions.
  const std::size_t n = 1024;
  auto series = synth::ByName("ecg", n, 47);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  std::size_t max_cached = 0;
  for (std::size_t length : {std::size_t{16}, std::size_t{32},
                             std::size_t{64}, std::size_t{128},
                             std::size_t{256}, std::size_t{64},
                             std::size_t{16}}) {
    auto ols = engine.ComputeRowProfile(5, length,
                                        ConvolutionBackend::kOverlapSave);
    ASSERT_TRUE(ols.ok());
    auto direct =
        engine.ComputeRowProfile(5, length, ConvolutionBackend::kDirect);
    ASSERT_TRUE(direct.ok());
    ExpectCrossBackendParity(*ols, *direct, 5, length);
    max_cached = std::max(max_cached, engine.ChunkSpectraCacheSizeForTesting());
  }
  EXPECT_LE(max_cached, 4u);
}

// Pins the shape of the three-way crossover: short windows go direct, a
// query that is a sizable fraction of the series keeps the full-size
// transform, and a long series with a comparatively short query switches
// to overlap-save.
TEST(BackendCostModelTest, CrossoverShape) {
  EXPECT_EQ(ChooseConvolutionBackend(600, 16, 585),
            ConvolutionBackend::kDirect);
  EXPECT_EQ(ChooseConvolutionBackend(2048, 1024, 1025),
            ConvolutionBackend::kFftSingle);
  EXPECT_EQ(ChooseConvolutionBackend(std::size_t{1} << 15, 1024,
                                     (std::size_t{1} << 15) - 1023),
            ConvolutionBackend::kOverlapSave);
  EXPECT_EQ(ChooseConvolutionBackend(std::size_t{1} << 17, 1024,
                                     (std::size_t{1} << 17) - 1023),
            ConvolutionBackend::kOverlapSave);
}

TEST(MassEngineTest, DistanceProfileMatchesUncached) {
  const std::size_t n = 1500;
  auto series = synth::ByName("ecg", n, 19);
  ASSERT_TRUE(series.ok());
  Rng rng(23);
  std::vector<double> query(200);
  for (auto& x : query) x = rng.Gaussian();

  MassEngine engine(*series);
  auto cached = engine.DistanceProfile(query);
  ASSERT_TRUE(cached.ok());
  auto uncached = DistanceProfile(*series, query);
  ASSERT_TRUE(uncached.ok());
  ASSERT_EQ(cached->size(), uncached->size());
  for (std::size_t j = 0; j < cached->size(); ++j) {
    EXPECT_NEAR((*cached)[j], (*uncached)[j], 1e-9) << "j=" << j;
  }
}

// DistanceProfile routes through the same cost model as ComputeRowProfile;
// both the direct-product branch (short query) and the FFT branch (long
// query) must agree with the brute-force definition. The configurations
// are asserted to actually land on opposite sides of the crossover so the
// test fails loudly if the cost model shifts from under it.
TEST(MassEngineTest, DistanceProfileDirectPathMatchesBruteForce) {
  const std::size_t n = 600;
  const std::size_t length = 16;
  ASSERT_FALSE(
      PreferFftSlidingDots(n, length, n - length + 1));  // direct branch
  auto series = synth::ByName("ecg", n, 29);
  ASSERT_TRUE(series.ok());
  Rng rng(31);
  std::vector<double> query(length);
  for (auto& x : query) x = rng.Gaussian();

  MassEngine engine(*series);
  auto fast = engine.DistanceProfile(query);
  ASSERT_TRUE(fast.ok());
  auto brute = BruteDistanceProfile(*series, query);
  ASSERT_TRUE(brute.ok());
  ASSERT_EQ(fast->size(), brute->size());
  for (std::size_t j = 0; j < fast->size(); ++j) {
    EXPECT_NEAR((*fast)[j], (*brute)[j], 1e-5) << "j=" << j;
  }
}

TEST(MassEngineTest, DistanceProfileFftPathMatchesBruteForce) {
  const std::size_t n = 2048;
  const std::size_t length = 1024;
  ASSERT_TRUE(PreferFftSlidingDots(n, length, n - length + 1));  // FFT branch
  auto series = synth::ByName("random_walk", n, 37);
  ASSERT_TRUE(series.ok());
  Rng rng(41);
  std::vector<double> query(length);
  for (auto& x : query) x = rng.Gaussian();

  MassEngine engine(*series);
  auto fast = engine.DistanceProfile(query);
  ASSERT_TRUE(fast.ok());
  auto brute = BruteDistanceProfile(*series, query);
  ASSERT_TRUE(brute.ok());
  ASSERT_EQ(fast->size(), brute->size());
  for (std::size_t j = 0; j < fast->size(); ++j) {
    EXPECT_NEAR((*fast)[j], (*brute)[j], 1e-5) << "j=" << j;
  }
}

TEST(MassEngineTest, ReusedEngineStaysConsistentAcrossLengths) {
  // The VALMOD pattern: one engine queried at many lengths; later lengths
  // must not be perturbed by spectra cached for earlier ones.
  const std::size_t n = 1024;
  auto series = synth::ByName("ecg", n, 41);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  for (std::size_t length = 500; length <= 520; ++length) {
    auto cached = engine.ComputeRowProfile(123, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, 123, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, 123, length);
  }
}

TEST(MassEngineTest, RejectsInvalidWindows) {
  auto series = synth::ByName("ecg", 256, 1);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  EXPECT_FALSE(engine.ComputeRowProfile(0, 0).ok());
  EXPECT_FALSE(engine.ComputeRowProfile(200, 100).ok());
  const std::vector<std::size_t> rows = {0, 250};
  EXPECT_FALSE(engine.ComputeRowProfiles(rows, 100).ok());
  std::vector<double> long_query(300, 1.0);
  EXPECT_FALSE(engine.DistanceProfile(long_query).ok());
}

// ---------------------------------------------------------------------------
// Chunk-spectra adoption: the streaming-append carry-over path. Both series
// use CreateWithCenter(values, 0.0) — the registry's streaming convention —
// so the shorter series' centered values are a bit-identical prefix of the
// longer one's.
// ---------------------------------------------------------------------------

TEST(MassEngineAdoptionTest, AdoptedSpectraAreBitIdenticalToFresh) {
  const std::size_t prev_n = 1900;
  const std::size_t n = 2048;
  const std::size_t length = 64;
  auto full = synth::ByName("random_walk", n, 29);
  ASSERT_TRUE(full.ok());
  const std::vector<double> values(full->values().begin(),
                                   full->values().end());

  auto prev_series = DataSeries::CreateWithCenter(
      {values.begin(), values.begin() + prev_n}, 0.0);
  ASSERT_TRUE(prev_series.ok());
  auto next_series = DataSeries::CreateWithCenter(values, 0.0);
  ASSERT_TRUE(next_series.ok());
  auto fresh_series = DataSeries::CreateWithCenter(values, 0.0);
  ASSERT_TRUE(fresh_series.ok());

  MassEngine prev(*prev_series);
  // Populate the previous engine's chunk spectra at this length's size.
  ASSERT_TRUE(
      prev.ComputeRowProfile(0, length, ConvolutionBackend::kOverlapSave)
          .ok());
  ASSERT_EQ(prev.ChunkSpectraCacheSizeForTesting(), 1u);

  MassEngine adopted(*next_series);
  const std::size_t copied = adopted.AdoptChunkSpectraFrom(prev, prev_n);
  // Every full chunk inside the unchanged prefix is copied, the rest (the
  // appended suffix and the previously zero-padded tail) recomputed.
  const std::size_t chunk = fft::OverlapSaveFftSize(length);
  const std::size_t hop = chunk / 2;
  ASSERT_GE(prev_n, chunk);
  EXPECT_EQ(copied, (prev_n - chunk) / hop + 1);
  EXPECT_EQ(adopted.ChunkSpectraCacheSizeForTesting(), 1u);

  MassEngine fresh(*fresh_series);
  for (const std::size_t offset : {std::size_t{0}, prev_n - length, n - length}) {
    auto a = adopted.ComputeRowProfile(offset, length,
                                       ConvolutionBackend::kOverlapSave);
    auto f = fresh.ComputeRowProfile(offset, length,
                                     ConvolutionBackend::kOverlapSave);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(f.ok());
    ASSERT_EQ(a->distances.size(), f->distances.size());
    for (std::size_t j = 0; j < f->distances.size(); ++j) {
      // Bit identity, not tolerance: adoption copies the exact bins a
      // fresh build would have produced.
      EXPECT_EQ(a->dots[j], f->dots[j]) << "offset=" << offset << " j=" << j;
      EXPECT_EQ(a->distances[j], f->distances[j])
          << "offset=" << offset << " j=" << j;
    }
  }
}

TEST(MassEngineAdoptionTest, PrefixMismatchAdoptsNothing) {
  auto base = synth::ByName("sine", 1024, 31);
  ASSERT_TRUE(base.ok());
  std::vector<double> values(base->values().begin(), base->values().end());
  auto prev_series = DataSeries::CreateWithCenter(values, 0.0);
  ASSERT_TRUE(prev_series.ok());
  values[100] += 0.5;  // a re-anchor or slide would change the prefix
  values.push_back(0.25);
  auto next_series = DataSeries::CreateWithCenter(values, 0.0);
  ASSERT_TRUE(next_series.ok());

  MassEngine prev(*prev_series);
  ASSERT_TRUE(
      prev.ComputeRowProfile(0, 32, ConvolutionBackend::kOverlapSave).ok());

  MassEngine next(*next_series);
  EXPECT_EQ(next.AdoptChunkSpectraFrom(prev, 1024), 0u);
  EXPECT_EQ(next.ChunkSpectraCacheSizeForTesting(), 0u);
  // Out-of-range prefixes are rejected, not clamped.
  EXPECT_EQ(next.AdoptChunkSpectraFrom(prev, 5000), 0u);
  EXPECT_EQ(next.AdoptChunkSpectraFrom(prev, 0), 0u);
}

TEST(MassEngineTest, CacheMemoryBytesGrowsWithUse) {
  auto series = synth::ByName("ecg", 2048, 17);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  const std::size_t before = engine.CacheMemoryBytes();
  ASSERT_TRUE(
      engine.ComputeRowProfile(0, 64, ConvolutionBackend::kOverlapSave).ok());
  ASSERT_TRUE(
      engine.ComputeRowProfile(0, 64, ConvolutionBackend::kFftSingle).ok());
  EXPECT_GT(engine.CacheMemoryBytes(), before);
}

}  // namespace
}  // namespace valmod::mass
