// Parity tests for the cached MassEngine against the uncached
// mass::ComputeRowProfile / mass::DistanceProfile path: same numbers (to
// 1e-9) across lengths, offsets, constant-window rows, and the batched
// entry point.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace valmod::mass {
namespace {

using series::DataSeries;

void ExpectRowParity(const RowProfile& cached, const RowProfile& uncached,
                     std::size_t offset, std::size_t length) {
  ASSERT_EQ(cached.dots.size(), uncached.dots.size());
  ASSERT_EQ(cached.distances.size(), uncached.distances.size());
  for (std::size_t j = 0; j < cached.dots.size(); ++j) {
    EXPECT_NEAR(cached.dots[j], uncached.dots[j],
                1e-9 * (1.0 + std::abs(uncached.dots[j])))
        << "offset=" << offset << " length=" << length << " j=" << j;
    EXPECT_NEAR(cached.distances[j], uncached.distances[j], 1e-9)
        << "offset=" << offset << " length=" << length << " j=" << j;
  }
}

class EngineParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineParityTest, MatchesUncachedAcrossOffsets) {
  const std::size_t length = GetParam();
  const std::size_t n = 2048;
  auto series = synth::ByName("ecg", n, 7);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::size_t count = series->NumSubsequences(length);
  for (std::size_t offset :
       {std::size_t{0}, count / 3, count / 2, count - 1}) {
    auto cached = engine.ComputeRowProfile(offset, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, offset, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, offset, length);
  }
}

// Lengths straddle the cost-model crossover so both the direct-dot fallback
// and the cached-FFT path are exercised (at n = 2048 the FFT path wins
// above a few hundred points).
INSTANTIATE_TEST_SUITE_P(Lengths, EngineParityTest,
                         ::testing::Values(4, 16, 64, 256, 512, 1024));

TEST(MassEngineTest, ConstantWindowRowsMatchUncached) {
  // Sine, then a flat shelf, then noise: rows inside the shelf are
  // constant-window queries, rows straddling it mix both conventions.
  Rng rng(31);
  std::vector<double> values;
  for (std::size_t i = 0; i < 200; ++i) {
    values.push_back(std::sin(0.1 * static_cast<double>(i)));
  }
  values.insert(values.end(), 100, 2.5);
  for (std::size_t i = 0; i < 200; ++i) values.push_back(rng.Gaussian());
  auto series = series::DataSeries::Create(std::move(values));
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::size_t length = 32;
  for (std::size_t offset : {std::size_t{100}, std::size_t{190},
                             std::size_t{230}, std::size_t{290},
                             std::size_t{350}}) {
    auto cached = engine.ComputeRowProfile(offset, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, offset, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, offset, length);
  }
}

TEST(MassEngineTest, BatchedMatchesSingleCalls) {
  const std::size_t n = 1024;
  const std::size_t length = 512;  // FFT path at this size
  auto series = synth::ByName("random_walk", n, 3);
  ASSERT_TRUE(series.ok());

  MassEngine engine(*series);
  const std::vector<std::size_t> rows = {0, 17, 100, 311, 500};
  auto batched = engine.ComputeRowProfiles(rows, length, /*num_threads=*/3);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto single = engine.ComputeRowProfile(rows[i], length);
    ASSERT_TRUE(single.ok());
    ExpectRowParity((*batched)[i], *single, rows[i], length);
  }
}

TEST(MassEngineTest, DistanceProfileMatchesUncached) {
  const std::size_t n = 1500;
  auto series = synth::ByName("ecg", n, 19);
  ASSERT_TRUE(series.ok());
  Rng rng(23);
  std::vector<double> query(200);
  for (auto& x : query) x = rng.Gaussian();

  MassEngine engine(*series);
  auto cached = engine.DistanceProfile(query);
  ASSERT_TRUE(cached.ok());
  auto uncached = DistanceProfile(*series, query);
  ASSERT_TRUE(uncached.ok());
  ASSERT_EQ(cached->size(), uncached->size());
  for (std::size_t j = 0; j < cached->size(); ++j) {
    EXPECT_NEAR((*cached)[j], (*uncached)[j], 1e-9) << "j=" << j;
  }
}

TEST(MassEngineTest, ReusedEngineStaysConsistentAcrossLengths) {
  // The VALMOD pattern: one engine queried at many lengths; later lengths
  // must not be perturbed by spectra cached for earlier ones.
  const std::size_t n = 1024;
  auto series = synth::ByName("ecg", n, 41);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  for (std::size_t length = 500; length <= 520; ++length) {
    auto cached = engine.ComputeRowProfile(123, length);
    ASSERT_TRUE(cached.ok());
    auto uncached = ComputeRowProfile(*series, 123, length);
    ASSERT_TRUE(uncached.ok());
    ExpectRowParity(*cached, *uncached, 123, length);
  }
}

TEST(MassEngineTest, RejectsInvalidWindows) {
  auto series = synth::ByName("ecg", 256, 1);
  ASSERT_TRUE(series.ok());
  MassEngine engine(*series);
  EXPECT_FALSE(engine.ComputeRowProfile(0, 0).ok());
  EXPECT_FALSE(engine.ComputeRowProfile(200, 100).ok());
  const std::vector<std::size_t> rows = {0, 250};
  EXPECT_FALSE(engine.ComputeRowProfiles(rows, 100).ok());
  std::vector<double> long_query(300, 1.0);
  EXPECT_FALSE(engine.DistanceProfile(long_query).ok());
}

}  // namespace
}  // namespace valmod::mass
