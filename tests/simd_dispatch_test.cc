// The runtime SIMD dispatch layer (simd/dispatch.h): target parsing and
// selection, and — the load-bearing property — BIT-IDENTITY of every
// compiled-in vector target against the scalar oracle on each dispatched
// kernel family: FFT butterfly schedules, spectrum products, sliding dot
// products, and the moving mean/std sweep. The goldens are only valid
// under every VALMOD_SIMD target because of these tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/valmod.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "mass/backend.h"
#include "mass/engine.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"
#include "simd/dispatch.h"
#include "stats/moving_stats.h"

namespace valmod {
namespace {

/// Every test forces dispatch targets; the fixture restores the entry
/// target (and the static cost model, which is keyed by target) so test
/// order cannot leak a forced target into other suites of this binary.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_ = simd::ActiveTarget(); }
  void TearDown() override {
    ASSERT_TRUE(simd::SetTarget(entry_).ok());
    mass::SetBackendCostModel(mass::BackendCostModel{});
  }

  /// The non-scalar targets this build+machine can run. Empty on a
  /// generic machine — every bit-identity test then degenerates to
  /// scalar-vs-scalar, which keeps the suite green everywhere.
  static std::vector<simd::Target> VectorTargets() {
    std::vector<simd::Target> targets = simd::SupportedTargets();
    std::erase(targets, simd::Target::kScalar);
    return targets;
  }

  simd::Target entry_ = simd::Target::kScalar;
};

TEST_F(SimdDispatchTest, ParseTargetRoundTripsEveryName) {
  for (const simd::Target target :
       {simd::Target::kScalar, simd::Target::kAvx2, simd::Target::kAvx512,
        simd::Target::kNeon}) {
    auto parsed = simd::ParseTarget(simd::TargetName(target));
    ASSERT_TRUE(parsed.ok()) << simd::TargetName(target);
    EXPECT_EQ(*parsed, target);
  }
  EXPECT_FALSE(simd::ParseTarget("sse9").ok());
  EXPECT_FALSE(simd::ParseTarget("").ok());
  EXPECT_FALSE(simd::ParseTarget("AVX2").ok());  // names are lowercase
}

TEST_F(SimdDispatchTest, SupportedTargetsIncludesScalarAndActive) {
  const std::vector<simd::Target> supported = simd::SupportedTargets();
  ASSERT_FALSE(supported.empty());
  EXPECT_NE(std::find(supported.begin(), supported.end(),
                      simd::Target::kScalar),
            supported.end());
  EXPECT_NE(std::find(supported.begin(), supported.end(),
                      simd::ActiveTarget()),
            supported.end());
  for (const simd::Target target : supported) {
    EXPECT_TRUE(simd::TargetCompiled(target));
    EXPECT_TRUE(simd::TargetSupported(target));
    EXPECT_TRUE(simd::SetTarget(target).ok());
    EXPECT_EQ(simd::ActiveTarget(), target);
  }
}

TEST_F(SimdDispatchTest, SetTargetRejectsUnsupportedTargets) {
  const std::vector<simd::Target> supported = simd::SupportedTargets();
  for (const simd::Target target :
       {simd::Target::kAvx2, simd::Target::kAvx512, simd::Target::kNeon}) {
    if (std::find(supported.begin(), supported.end(), target) !=
        supported.end()) {
      continue;
    }
    EXPECT_FALSE(simd::SetTarget(target).ok()) << simd::TargetName(target);
    // A failed SetTarget must leave the active target untouched.
    EXPECT_EQ(simd::ActiveTarget(), entry_);
  }
}

/// Runs `fn` with the dispatch target forced to `target`.
template <typename Fn>
void Under(simd::Target target, Fn&& fn) {
  ASSERT_TRUE(simd::SetTarget(target).ok());
  fn();
}

std::vector<std::complex<double>> RandomComplex(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  return data;
}

std::vector<double> RandomReal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.Gaussian();
  return data;
}

// Both the radix-2 pass (odd log2 sizes) and the fused radix-2^2 passes,
// in DIT and DIF schedules, forward and inverse, must be bit-identical to
// the scalar kernels — n = 1024 exercises the even-log2 all-radix-4
// schedule, n = 2048 the odd-log2 schedule with the extra span-2 pass.
TEST_F(SimdDispatchTest, TransformsBitIdenticalAcrossTargets) {
  for (const std::size_t n : {std::size_t{1024}, std::size_t{2048}}) {
    const std::vector<std::complex<double>> input = RandomComplex(n, n);
    const std::shared_ptr<const fft::FftPlan> plan = fft::GetPlan(n);

    std::vector<std::complex<double>> fwd, inv, fwd_bitrev, inv_bitrev;
    Under(simd::Target::kScalar, [&] {
      fwd = input;
      plan->Forward(fwd);
      inv = fwd;
      plan->Inverse(inv);
      fwd_bitrev = input;
      plan->ForwardBitrev(fwd_bitrev);
      inv_bitrev = fwd_bitrev;
      plan->InverseBitrev(inv_bitrev);
    });

    for (const simd::Target target : VectorTargets()) {
      SCOPED_TRACE(simd::TargetName(target));
      Under(target, [&] {
        std::vector<std::complex<double>> data = input;
        plan->Forward(data);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i].real(), fwd[i].real()) << "n=" << n << " i=" << i;
          ASSERT_EQ(data[i].imag(), fwd[i].imag()) << "n=" << n << " i=" << i;
        }
        plan->Inverse(data);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i].real(), inv[i].real()) << "n=" << n << " i=" << i;
          ASSERT_EQ(data[i].imag(), inv[i].imag()) << "n=" << n << " i=" << i;
        }
        data = input;
        plan->ForwardBitrev(data);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i].real(), fwd_bitrev[i].real()) << "i=" << i;
          ASSERT_EQ(data[i].imag(), fwd_bitrev[i].imag()) << "i=" << i;
        }
        plan->InverseBitrev(data);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i].real(), inv_bitrev[i].real()) << "i=" << i;
          ASSERT_EQ(data[i].imag(), inv_bitrev[i].imag()) << "i=" << i;
        }
      });
    }
  }
}

// The elementwise spectrum product behind every convolution path,
// including odd bin counts so the vector kernels' scalar tails run.
TEST_F(SimdDispatchTest, SpectrumProductsBitIdenticalAcrossTargets) {
  const std::size_t n = 512;
  const std::shared_ptr<const fft::FftPlan> plan = fft::GetPlan(n);
  const std::vector<double> a = RandomReal(n, 7);
  const std::vector<double> b = RandomReal(n, 8);
  const std::vector<double> filter_signal = RandomReal(n / 4, 9);

  std::vector<std::complex<double>> pair(n), filter(n), product(n);
  plan->RealForwardPair(a, b, pair);
  plan->RealForwardPair(filter_signal, {}, filter);

  std::vector<std::complex<double>> scalar_inplace, scalar_into;
  Under(simd::Target::kScalar, [&] {
    scalar_inplace = pair;
    plan->MultiplyPairByRealSpectrum(filter, scalar_inplace);
    scalar_into.resize(n);
    plan->MultiplyPairByRealSpectrumInto(filter, pair, scalar_into);
  });

  for (const simd::Target target : VectorTargets()) {
    SCOPED_TRACE(simd::TargetName(target));
    Under(target, [&] {
      std::vector<std::complex<double>> inplace = pair;
      plan->MultiplyPairByRealSpectrum(filter, inplace);
      std::vector<std::complex<double>> into(n);
      plan->MultiplyPairByRealSpectrumInto(filter, pair, into);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(inplace[i].real(), scalar_inplace[i].real()) << "i=" << i;
        ASSERT_EQ(inplace[i].imag(), scalar_inplace[i].imag()) << "i=" << i;
        ASSERT_EQ(into[i].real(), scalar_into[i].real()) << "i=" << i;
        ASSERT_EQ(into[i].imag(), scalar_into[i].imag()) << "i=" << i;
      }
      // Odd element counts through the raw kernel: the remainder lanes.
      for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                      std::size_t{5}, std::size_t{7}}) {
        std::vector<std::complex<double>> out(count), expect(count);
        simd::ActiveKernels().complex_multiply(
            reinterpret_cast<const double*>(pair.data()),
            reinterpret_cast<const double*>(filter.data()),
            reinterpret_cast<double*>(out.data()), count);
        const simd::Target prev = simd::ActiveTarget();
        ASSERT_TRUE(simd::SetTarget(simd::Target::kScalar).ok());
        simd::ActiveKernels().complex_multiply(
            reinterpret_cast<const double*>(pair.data()),
            reinterpret_cast<const double*>(filter.data()),
            reinterpret_cast<double*>(expect.data()), count);
        ASSERT_TRUE(simd::SetTarget(prev).ok());
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i].real(), expect[i].real()) << "count=" << count;
          ASSERT_EQ(out[i].imag(), expect[i].imag()) << "count=" << count;
        }
      }
    });
  }
}

// The four-accumulator dot product: every length from the empty product
// through all remainder phases, plus a long vector.
TEST_F(SimdDispatchTest, DotProductBitIdenticalAcrossTargets) {
  const std::vector<double> a = RandomReal(1024, 21);
  const std::vector<double> b = RandomReal(1024, 22);

  for (const simd::Target target : VectorTargets()) {
    SCOPED_TRACE(simd::TargetName(target));
    for (std::size_t n = 0; n <= 40; ++n) {
      double scalar = 0.0, vec = 0.0;
      Under(simd::Target::kScalar,
            [&] { scalar = series::DotProduct(a.data(), b.data(), n); });
      Under(target, [&] { vec = series::DotProduct(a.data(), b.data(), n); });
      ASSERT_EQ(vec, scalar) << "n=" << n;
    }
    double scalar = 0.0, vec = 0.0;
    Under(simd::Target::kScalar,
          [&] { scalar = series::DotProduct(a.data(), b.data(), a.size()); });
    Under(target,
          [&] { vec = series::DotProduct(a.data(), b.data(), a.size()); });
    ASSERT_EQ(vec, scalar);
  }
}

// The moving mean/std sweep, including length 1 (the scalar special case:
// variance is exactly zero) and a constant window region (the clamp and
// sqrt(-0.0-free) path).
TEST_F(SimdDispatchTest, WindowStatsBitIdenticalAcrossTargets) {
  std::vector<double> data = RandomReal(1000, 33);
  std::fill(data.begin() + 200, data.begin() + 300, 4.25);  // constant run
  auto stats = stats::MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());

  for (const std::size_t length :
       {std::size_t{1}, std::size_t{2}, std::size_t{64}, std::size_t{97}}) {
    std::vector<double> scalar_means, scalar_stds;
    Under(simd::Target::kScalar, [&] {
      ASSERT_TRUE(stats->WindowStats(length, &scalar_means, &scalar_stds)
                      .ok());
    });
    for (const simd::Target target : VectorTargets()) {
      SCOPED_TRACE(simd::TargetName(target));
      Under(target, [&] {
        std::vector<double> means, stds;
        ASSERT_TRUE(stats->WindowStats(length, &means, &stds).ok());
        ASSERT_EQ(means.size(), scalar_means.size());
        for (std::size_t i = 0; i < means.size(); ++i) {
          ASSERT_EQ(means[i], scalar_means[i]) << "length=" << length
                                               << " i=" << i;
          ASSERT_EQ(stds[i], scalar_stds[i]) << "length=" << length
                                             << " i=" << i;
        }
      });
    }
  }
}

// End-to-end: every convolution backend produces bit-identical row
// profiles under every target. length = 100 gives the overlap-save path a
// 512-point chunk and ~10 chunk boundaries over this series.
TEST_F(SimdDispatchTest, EngineBackendsBitIdenticalAcrossTargets) {
  auto series = synth::ByName("ecg", 4096, 17);
  ASSERT_TRUE(series.ok());
  const std::size_t length = 100;
  const std::vector<std::size_t> rows = {0, 511, 512, 1000, 2048, 3996};

  for (const mass::ConvolutionBackend backend :
       {mass::ConvolutionBackend::kDirect,
        mass::ConvolutionBackend::kFftSingle,
        mass::ConvolutionBackend::kFftPair,
        mass::ConvolutionBackend::kOverlapSave}) {
    SCOPED_TRACE(mass::ConvolutionBackendName(backend));
    std::vector<mass::RowProfile> scalar_profiles;
    Under(simd::Target::kScalar, [&] {
      mass::MassEngine engine(*series);
      auto result = engine.ComputeRowProfiles(rows, length, 1, backend);
      ASSERT_TRUE(result.ok());
      scalar_profiles = std::move(*result);
    });

    for (const simd::Target target : VectorTargets()) {
      SCOPED_TRACE(simd::TargetName(target));
      Under(target, [&] {
        mass::MassEngine engine(*series);
        auto result = engine.ComputeRowProfiles(rows, length, 1, backend);
        ASSERT_TRUE(result.ok());
        ASSERT_EQ(result->size(), scalar_profiles.size());
        for (std::size_t r = 0; r < result->size(); ++r) {
          const auto& got = (*result)[r].distances;
          const auto& expect = scalar_profiles[r].distances;
          ASSERT_EQ(got.size(), expect.size());
          for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], expect[i]) << "row=" << rows[r] << " i=" << i;
          }
        }
      });
    }
  }
}

// The ctest-level claim behind the goldens: full VALMOD motif output is
// bit-identical across dispatch targets.
TEST_F(SimdDispatchTest, MotifOutputBitIdenticalAcrossTargets) {
  auto series = synth::ByName("ecg", 2000, 3);
  ASSERT_TRUE(series.ok());
  core::ValmodOptions options;
  options.min_length = 50;
  options.max_length = 60;
  options.k = 3;

  Result<core::ValmodResult> scalar_result =
      Status::Internal("not run");
  Under(simd::Target::kScalar,
        [&] { scalar_result = core::RunValmod(*series, options); });
  ASSERT_TRUE(scalar_result.ok());

  for (const simd::Target target : VectorTargets()) {
    SCOPED_TRACE(simd::TargetName(target));
    Under(target, [&] {
      auto result = core::RunValmod(*series, options);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->per_length.size(), scalar_result->per_length.size());
      for (std::size_t l = 0; l < result->per_length.size(); ++l) {
        const auto& got = result->per_length[l];
        const auto& expect = scalar_result->per_length[l];
        ASSERT_EQ(got.length, expect.length);
        ASSERT_EQ(got.motifs.size(), expect.motifs.size());
        for (std::size_t m = 0; m < got.motifs.size(); ++m) {
          EXPECT_EQ(got.motifs[m].offset_a, expect.motifs[m].offset_a);
          EXPECT_EQ(got.motifs[m].offset_b, expect.motifs[m].offset_b);
          EXPECT_EQ(got.motifs[m].distance, expect.motifs[m].distance);
          EXPECT_EQ(got.motifs[m].normalized_distance,
                    expect.motifs[m].normalized_distance);
        }
      }
    });
  }
}

// Satellite fix: calibrated cost-model weights are keyed by the dispatch
// target they were fitted under. Switching targets must drop them back to
// the static fit AND bump the generation (invalidating memoized kAuto
// results), so weights fitted under a vector target can never steer the
// chooser after a forced switch to scalar.
TEST_F(SimdDispatchTest, CostModelInvalidatedOnTargetSwitch) {
  const std::vector<simd::Target> vector_targets = VectorTargets();
  if (vector_targets.empty()) {
    GTEST_SKIP() << "only the scalar target is available on this machine";
  }
  const simd::Target vec = vector_targets.front();

  ASSERT_TRUE(simd::SetTarget(vec).ok());
  mass::BackendCostModel fitted;
  fitted.fft_single = 123.0;
  mass::SetBackendCostModel(fitted);
  const std::uint64_t fitted_generation = mass::BackendCostModelGeneration();

  mass::BackendCostModel active = mass::ActiveBackendCostModel();
  EXPECT_EQ(active.fft_single, 123.0);
  EXPECT_EQ(active.simd_target, vec);

  // Same target: the installed model stays.
  EXPECT_EQ(mass::ActiveBackendCostModel().fft_single, 123.0);
  EXPECT_EQ(mass::BackendCostModelGeneration(), fitted_generation);

  // Target switch: back to static defaults, new generation.
  ASSERT_TRUE(simd::SetTarget(simd::Target::kScalar).ok());
  active = mass::ActiveBackendCostModel();
  EXPECT_EQ(active.fft_single, mass::BackendCostModel{}.fft_single);
  EXPECT_EQ(active.simd_target, simd::Target::kScalar);
  EXPECT_GT(mass::BackendCostModelGeneration(), fitted_generation);

  // A model installed under the new target sticks again.
  mass::SetBackendCostModel(fitted);
  EXPECT_EQ(mass::ActiveBackendCostModel().fft_single, 123.0);
  EXPECT_EQ(mass::ActiveBackendCostModel().simd_target,
            simd::Target::kScalar);
}

}  // namespace
}  // namespace valmod
