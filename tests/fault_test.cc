// Unit tests for the fault-injection framework: trigger gates (nth,
// probability, max_fires), deterministic replay under a fixed seed,
// directive parsing for the VALMOD_FAULTS / `faults`-verb grammar, and
// disarm semantics. All tests use private FaultInjector instances so they
// cannot interfere with the process-global registry (or each other).

#include "common/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace valmod::fault {
namespace {

TEST(FaultInjectorTest, DisarmedPointReturnsOk) {
  FaultInjector injector;
  EXPECT_EQ(injector.armed_count(), 0);
  EXPECT_TRUE(injector.Check("anything.at.all").ok());
  EXPECT_TRUE(injector.List().empty());
}

TEST(FaultInjectorTest, ErrorFaultFiresEveryHitWithDefaults) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kUnavailable;
  injector.Arm("server.write", spec);
  EXPECT_EQ(injector.armed_count(), 1);

  for (int i = 0; i < 3; ++i) {
    const Status status = injector.Check("server.write");
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    // The default message names the point — a chaos assertion can tell
    // injected failures from organic ones.
    EXPECT_NE(status.message().find("server.write"), std::string::npos);
  }
  // A different point is unaffected.
  EXPECT_TRUE(injector.Check("registry.load.alloc").ok());

  const std::vector<FaultPointInfo> info = injector.List();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].point, "server.write");
  EXPECT_EQ(info[0].hits, 3u);
  EXPECT_EQ(info[0].fires, 3u);
}

TEST(FaultInjectorTest, NthGateFiresExactlyOnce) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kAllocFail;
  spec.nth = 3;
  injector.Arm("registry.load.alloc", spec);

  EXPECT_TRUE(injector.Check("registry.load.alloc").ok());   // hit 1
  EXPECT_TRUE(injector.Check("registry.load.alloc").ok());   // hit 2
  const Status third = injector.Check("registry.load.alloc");  // hit 3
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("allocation"), std::string::npos);
  EXPECT_TRUE(injector.Check("registry.load.alloc").ok());   // hit 4
}

TEST(FaultInjectorTest, MaxFiresStopsAfterBudget) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.max_fires = 2;
  injector.Arm("p", spec);

  EXPECT_FALSE(injector.Check("p").ok());
  EXPECT_FALSE(injector.Check("p").ok());
  // Budget exhausted: the point stays armed (hits keep counting) but no
  // longer fires.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(injector.Check("p").ok());
  const std::vector<FaultPointInfo> info = injector.List();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].fires, 2u);
  EXPECT_EQ(info[0].hits, 7u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  const auto fire_pattern = [](std::uint64_t seed) {
    FaultInjector injector;
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.probability = 0.5;
    spec.seed = seed;
    injector.Arm("p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!injector.Check("p").ok());
    return fired;
  };

  const std::vector<bool> first = fire_pattern(42);
  // Same seed -> bit-identical replay (this is what makes chaos failures
  // reproducible).
  EXPECT_EQ(fire_pattern(42), first);
  // A different seed gives a different pattern.
  EXPECT_NE(fire_pattern(43), first);
  // p=0.5 over 64 hits: both outcomes must occur.
  int fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FaultInjectorTest, ProbabilityEndpointsAreExact) {
  FaultInjector injector;
  FaultSpec never;
  never.probability = 0.0;
  injector.Arm("never", never);
  FaultSpec always;
  always.probability = 1.0;
  injector.Arm("always", always);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(injector.Check("never").ok());
    EXPECT_FALSE(injector.Check("always").ok());
  }
}

TEST(FaultInjectorTest, DelayFaultSleepsThenContinues) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 30;
  injector.Arm("scheduler.worker.stall", spec);

  const auto start = std::chrono::steady_clock::now();
  const Status status = injector.Check("scheduler.worker.stall");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(status.ok());  // delay faults stall, they do not fail
  EXPECT_GE(elapsed.count(), 25);
}

TEST(FaultInjectorTest, ReArmingResetsCounters) {
  FaultInjector injector;
  FaultSpec spec;
  spec.nth = 1;
  injector.Arm("p", spec);
  EXPECT_FALSE(injector.Check("p").ok());
  EXPECT_TRUE(injector.Check("p").ok());  // nth=1 already consumed
  injector.Arm("p", spec);                // re-arm: counters restart
  EXPECT_EQ(injector.armed_count(), 1);
  EXPECT_FALSE(injector.Check("p").ok());
}

TEST(FaultInjectorTest, DisarmRestoresOkAndArmedCount) {
  FaultInjector injector;
  injector.Arm("a", FaultSpec());
  injector.Arm("b", FaultSpec());
  EXPECT_EQ(injector.armed_count(), 2);
  EXPECT_TRUE(injector.Disarm("a"));
  EXPECT_FALSE(injector.Disarm("a"));  // already gone
  EXPECT_EQ(injector.armed_count(), 1);
  EXPECT_TRUE(injector.Check("a").ok());
  EXPECT_FALSE(injector.Check("b").ok());
  injector.DisarmAll();
  EXPECT_EQ(injector.armed_count(), 0);
  EXPECT_TRUE(injector.Check("b").ok());
}

TEST(FaultInjectorTest, DirectiveStringArmsMultiplePoints) {
  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmFromString(
                      "registry.load.alloc=alloc:nth=2;"
                      "server.write=error:code=IoError:max_fires=1;"
                      "scheduler.worker.stall=delay:delay_ms=5")
                  .ok());
  EXPECT_EQ(injector.armed_count(), 3);

  EXPECT_TRUE(injector.Check("registry.load.alloc").ok());
  EXPECT_EQ(injector.Check("registry.load.alloc").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.Check("server.write").code(), StatusCode::kIoError);
  EXPECT_TRUE(injector.Check("server.write").ok());  // max_fires=1 spent
  EXPECT_TRUE(injector.Check("scheduler.worker.stall").ok());
}

TEST(FaultInjectorTest, OffDirectiveDisarmsInsideOneString) {
  FaultInjector injector;
  injector.Arm("p", FaultSpec());
  ASSERT_TRUE(injector.ArmFromString("p=off").ok());
  EXPECT_EQ(injector.armed_count(), 0);
  EXPECT_TRUE(injector.Check("p").ok());
}

TEST(FaultInjectorTest, MalformedDirectivesRejectAtomically) {
  FaultInjector injector;
  const std::vector<std::string> bad = {
      "noequals",                    // missing '='
      "p=explode",                   // unknown kind
      "p=error:code=NotACode",       // unknown status code
      "p=error:p=1.5",               // probability out of [0,1]
      "p=error:nth=abc",             // non-numeric
      "p=error:unknownkey=1",        // unknown key
      "good=error;bad=explode",      // second directive bad
  };
  for (const std::string& directives : bad) {
    const Status status = injector.ArmFromString(directives);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << directives;
    // All-or-nothing: nothing from a rejected string may have been armed.
    EXPECT_EQ(injector.armed_count(), 0) << directives;
  }
}

TEST(FaultInjectorTest, GlobalMacroRoundTrip) {
  // Exercise the real macro against the real global registry, restoring
  // state afterwards. Serial with respect to other tests in this binary
  // (gtest runs tests in one thread).
  FaultInjector& global = FaultInjector::Global();
  const int before = global.armed_count();
  if (kFaultInjectionEnabled) {
    FaultSpec spec;
    spec.code = StatusCode::kUnavailable;
    global.Arm("fault_test.macro", spec);
    EXPECT_EQ(VALMOD_FAULT_POINT("fault_test.macro").code(),
              StatusCode::kUnavailable);
    EXPECT_TRUE(global.Disarm("fault_test.macro"));
  } else {
    EXPECT_TRUE(VALMOD_FAULT_POINT("fault_test.macro").ok());
  }
  EXPECT_EQ(global.armed_count(), before);
}

}  // namespace
}  // namespace valmod::fault
