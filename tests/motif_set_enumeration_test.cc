// Tests for variable-length motif-set enumeration.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/motif_set_enumeration.h"
#include "series/generators.h"

namespace valmod::core {
namespace {

TEST(MotifSetEnumerationTest, TopSetCoversPlantedOccurrences) {
  synth::PlantedMotifOptions plant;
  plant.length = 9000;
  plant.seed = 71;
  plant.motif_length = 150;
  plant.occurrences = 5;
  plant.occurrence_noise = 0.02;
  auto planted = synth::PlantedMotif(plant);
  ASSERT_TRUE(planted.ok());

  MotifSetEnumerationOptions options;
  options.valmod.min_length = 140;
  options.valmod.max_length = 160;
  options.valmod.k = 2;
  options.valmod.num_threads = 4;
  options.radius_factor = 3.0;
  auto result = EnumerateMotifSets(planted->series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->sets.empty());

  // The highest-cardinality set must cover all planted occurrences.
  const RankedMotifSet& top = result->sets.front();
  EXPECT_GE(top.cardinality, plant.occurrences);
  for (std::size_t offset : planted->motif_offsets) {
    bool covered = false;
    for (const MotifSetMember& member : top.set.members) {
      if (std::llabs(member.offset - static_cast<int64_t>(offset)) <= 20) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "occurrence " << offset;
  }
}

TEST(MotifSetEnumerationTest, RankingOrder) {
  auto series = synth::ByName("ecg", 1500, 73);
  ASSERT_TRUE(series.ok());
  MotifSetEnumerationOptions options;
  options.valmod.min_length = 40;
  options.valmod.max_length = 60;
  options.valmod.k = 2;
  auto result = EnumerateMotifSets(*series, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->sets.size(); ++i) {
    const auto& prev = result->sets[i - 1];
    const auto& cur = result->sets[i];
    if (prev.cardinality == cur.cardinality) {
      EXPECT_LE(prev.normalized_seed_distance,
                cur.normalized_seed_distance + 1e-12);
    } else {
      EXPECT_GT(prev.cardinality, cur.cardinality);
    }
  }
}

TEST(MotifSetEnumerationTest, DeduplicationCollapsesScales) {
  // A strongly periodic signal yields essentially the same event at every
  // length; deduplication should collapse most of them.
  auto series = synth::ByName("sine", 2000, 75);
  ASSERT_TRUE(series.ok());

  MotifSetEnumerationOptions with_dedup;
  with_dedup.valmod.min_length = 50;
  with_dedup.valmod.max_length = 70;
  with_dedup.valmod.k = 1;
  auto deduped = EnumerateMotifSets(*series, with_dedup);
  ASSERT_TRUE(deduped.ok());

  MotifSetEnumerationOptions without = with_dedup;
  without.deduplicate_across_lengths = false;
  auto raw = EnumerateMotifSets(*series, without);
  ASSERT_TRUE(raw.ok());

  EXPECT_EQ(raw->sets.size(), 21u);  // one per length at k = 1
  EXPECT_LT(deduped->sets.size(), raw->sets.size());
}

TEST(MotifSetEnumerationTest, ExposesUnderlyingValmodResult) {
  auto series = synth::ByName("random_walk", 600, 77);
  ASSERT_TRUE(series.ok());
  MotifSetEnumerationOptions options;
  options.valmod.min_length = 20;
  options.valmod.max_length = 30;
  auto result = EnumerateMotifSets(*series, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->valmod.per_length.size(), 11u);
  EXPECT_EQ(result->valmod.valmap.size(), series->size() - 20 + 1);
}

TEST(MotifSetEnumerationTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 200, 79);
  ASSERT_TRUE(series.ok());
  MotifSetEnumerationOptions options;
  options.valmod.min_length = 20;
  options.valmod.max_length = 30;
  options.radius_factor = -1.0;
  EXPECT_FALSE(EnumerateMotifSets(*series, options).ok());
  options.radius_factor = 2.0;
  options.valmod.min_length = 0;
  EXPECT_FALSE(EnumerateMotifSets(*series, options).ok());
}

}  // namespace
}  // namespace valmod::core
