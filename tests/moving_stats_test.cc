// Tests for MovingStats: O(1) window statistics vs naive computation,
// centering invariants, and constant-window classification.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/moving_stats.h"

namespace valmod::stats {
namespace {

std::vector<double> RandomData(std::size_t n, uint64_t seed,
                               double offset = 0.0) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (auto& x : data) x = offset + rng.Gaussian();
  return data;
}

double NaiveMean(const std::vector<double>& data, std::size_t offset,
                 std::size_t length) {
  double sum = 0.0;
  for (std::size_t i = 0; i < length; ++i) sum += data[offset + i];
  return sum / static_cast<double>(length);
}

double NaiveVariance(const std::vector<double>& data, std::size_t offset,
                     std::size_t length) {
  const double mean = NaiveMean(data, offset, length);
  double acc = 0.0;
  for (std::size_t i = 0; i < length; ++i) {
    const double d = data[offset + i] - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(length);
}

TEST(MovingStatsTest, RejectsEmpty) {
  EXPECT_FALSE(MovingStats::Create({}).ok());
}

TEST(MovingStatsTest, RejectsNonFinite) {
  std::vector<double> data = {1.0, std::nan(""), 2.0};
  EXPECT_EQ(MovingStats::Create(data).status().code(),
            StatusCode::kInvalidArgument);
  data[1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MovingStats::Create(data).ok());
}

class MovingStatsWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MovingStatsWindowTest, MatchesNaiveForAllOffsets) {
  const std::size_t length = GetParam();
  const std::vector<double> data = RandomData(256, 5);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  for (std::size_t offset = 0; offset + length <= data.size();
       offset += 7) {
    EXPECT_NEAR(stats->Mean(offset, length), NaiveMean(data, offset, length),
                1e-10);
    EXPECT_NEAR(stats->Variance(offset, length),
                NaiveVariance(data, offset, length), 1e-9);
    EXPECT_NEAR(stats->StdDev(offset, length),
                std::sqrt(NaiveVariance(data, offset, length)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, MovingStatsWindowTest,
                         ::testing::Values(1, 2, 3, 8, 50, 255, 256));

TEST(MovingStatsTest, LargeOffsetDataStaysAccurate) {
  // The global-centering trick must keep variance accurate when the data
  // rides on a large level (the failure mode of raw prefix sums of squares).
  const std::vector<double> data = RandomData(512, 9, /*offset=*/1e7);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  for (std::size_t offset : {0u, 100u, 300u}) {
    EXPECT_NEAR(stats->Variance(offset, 64),
                NaiveVariance(data, offset, 64),
                1e-6 * NaiveVariance(data, offset, 64));
    EXPECT_NEAR(stats->Mean(offset, 64), NaiveMean(data, offset, 64), 1e-3);
  }
}

TEST(MovingStatsTest, CenteredMeanIsShiftedMean) {
  const std::vector<double> data = RandomData(128, 13, 5.0);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  for (std::size_t offset : {0u, 17u, 64u}) {
    EXPECT_NEAR(stats->CenteredMean(offset, 32) + stats->global_mean(),
                stats->Mean(offset, 32), 1e-10);
  }
}

TEST(MovingStatsTest, CenteredValuesSumToZero) {
  const std::vector<double> data = RandomData(200, 21, -3.0);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  double sum = 0.0;
  for (double c : stats->centered()) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-8);
}

TEST(MovingStatsTest, ConstantSeriesDetected) {
  const std::vector<double> data(64, 3.5);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->IsConstant(0, 64));
  EXPECT_TRUE(stats->IsConstant(10, 5));
  EXPECT_DOUBLE_EQ(stats->Variance(3, 20), 0.0);
  EXPECT_DOUBLE_EQ(stats->Mean(3, 20), 3.5);
}

TEST(MovingStatsTest, ConstantRegionInsideNoisySeries) {
  std::vector<double> data = RandomData(128, 33);
  for (std::size_t i = 40; i < 80; ++i) data[i] = 2.0;
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->IsConstant(45, 30));
  EXPECT_FALSE(stats->IsConstant(0, 30));
  EXPECT_FALSE(stats->IsConstant(30, 30));  // straddles the boundary
}

TEST(MovingStatsTest, ThresholdScalesWithGlobalVariance) {
  // Identical shapes at different amplitudes should classify identically.
  std::vector<double> small = RandomData(128, 41);
  std::vector<double> big = small;
  for (double& x : big) x *= 1e6;
  auto stats_small = MovingStats::Create(small);
  auto stats_big = MovingStats::Create(big);
  ASSERT_TRUE(stats_small.ok());
  ASSERT_TRUE(stats_big.ok());
  for (std::size_t offset : {0u, 32u, 64u}) {
    EXPECT_EQ(stats_small->IsConstant(offset, 16),
              stats_big->IsConstant(offset, 16));
  }
}

TEST(MovingStatsTest, WindowStatsBulkMatchesScalar) {
  const std::vector<double> data = RandomData(300, 55);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  std::vector<double> means, stds;
  ASSERT_TRUE(stats->WindowStats(25, &means, &stds).ok());
  ASSERT_EQ(means.size(), 276u);
  for (std::size_t i = 0; i < means.size(); i += 13) {
    EXPECT_DOUBLE_EQ(means[i], stats->Mean(i, 25));
    EXPECT_DOUBLE_EQ(stds[i], stats->StdDev(i, 25));
  }
}

TEST(MovingStatsTest, CenteredWindowStatsShifted) {
  const std::vector<double> data = RandomData(100, 66, 4.0);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  std::vector<double> means, stds, cmeans, cstds;
  ASSERT_TRUE(stats->WindowStats(10, &means, &stds).ok());
  ASSERT_TRUE(stats->CenteredWindowStats(10, &cmeans, &cstds).ok());
  for (std::size_t i = 0; i < means.size(); ++i) {
    EXPECT_NEAR(cmeans[i] + stats->global_mean(), means[i], 1e-10);
    EXPECT_DOUBLE_EQ(cstds[i], stds[i]);
  }
}

TEST(MovingStatsTest, WindowStatsRejectsBadLength) {
  const std::vector<double> data = RandomData(10, 1);
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  std::vector<double> means, stds;
  EXPECT_EQ(stats->WindowStats(0, &means, &stds).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stats->WindowStats(11, &means, &stds).code(),
            StatusCode::kOutOfRange);
}

TEST(MovingStatsTest, VarianceNeverNegative) {
  // Near-constant data with rounding noise must still clamp at zero.
  std::vector<double> data(128, 1.0);
  data[5] += 1e-16;
  auto stats = MovingStats::Create(data);
  ASSERT_TRUE(stats.ok());
  for (std::size_t offset = 0; offset + 16 <= data.size(); ++offset) {
    EXPECT_GE(stats->Variance(offset, 16), 0.0);
  }
}

}  // namespace
}  // namespace valmod::stats
