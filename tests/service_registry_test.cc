// Tests for the dataset registry: ref-counted entries, shared engines,
// generations, and the streaming (append-only) path.

#include "service/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mp/stomp.h"
#include "series/generators.h"

namespace valmod::service {
namespace {

series::DataSeries MakeSeries(std::size_t n, std::uint64_t seed = 1) {
  auto series = synth::ByName("random_walk", n, seed);
  EXPECT_TRUE(series.ok());
  return std::move(*series);
}

TEST(DatasetRegistryTest, LoadGetUnload) {
  DatasetRegistry registry;
  auto loaded = registry.LoadSeries("walk", MakeSeries(512));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->name(), "walk");
  EXPECT_EQ((*loaded)->size(), 512u);
  EXPECT_EQ((*loaded)->generation(), 1u);
  EXPECT_FALSE((*loaded)->streaming());

  auto got = registry.Get("walk");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), loaded->get());

  EXPECT_EQ(registry.Get("absent").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Unload("walk").ok());
  EXPECT_EQ(registry.Get("walk").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Unload("walk").code(), StatusCode::kNotFound);
}

TEST(DatasetRegistryTest, DuplicateNamesRejected) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.LoadSeries("walk", MakeSeries(128)).ok());
  EXPECT_EQ(registry.LoadSeries("walk", MakeSeries(128)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.CreateStreaming("walk", 16).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatasetRegistryTest, SnapshotSharesOneEngineAcrossRequests) {
  DatasetRegistry registry;
  auto dataset = registry.LoadSeries("walk", MakeSeries(256));
  ASSERT_TRUE(dataset.ok());
  auto a = (*dataset)->Snapshot();
  auto b = (*dataset)->Snapshot();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same snapshot object => same engine => shared spectra caches.
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(&(*a)->engine(), &(*b)->engine());
}

TEST(DatasetRegistryTest, UnloadKeepsInFlightSnapshotsAlive) {
  DatasetRegistry registry;
  auto dataset = registry.LoadSeries("walk", MakeSeries(256));
  ASSERT_TRUE(dataset.ok());
  auto snapshot = (*dataset)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(registry.Unload("walk").ok());
  // The registry dropped the name, but this "request" still computes
  // against its snapshot safely.
  auto profile = (*snapshot)->engine().ComputeRowProfile(0, 32);
  EXPECT_TRUE(profile.ok());
  EXPECT_EQ((*snapshot)->series().size(), 256u);
}

TEST(DatasetRegistryTest, AppendOnStaticDatasetFails) {
  DatasetRegistry registry;
  auto dataset = registry.LoadSeries("walk", MakeSeries(64));
  ASSERT_TRUE(dataset.ok());
  const std::vector<double> values{1.0, 2.0};
  EXPECT_EQ((*dataset)->Append(values).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatasetRegistryTest, StreamingAppendBumpsGenerationAndProfiles) {
  DatasetRegistry registry;
  auto dataset = registry.CreateStreaming("stream", 8);
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE((*dataset)->streaming());
  EXPECT_EQ((*dataset)->streaming_length(), 8u);

  // Empty: no snapshot yet.
  EXPECT_EQ((*dataset)->Snapshot().status().code(),
            StatusCode::kFailedPrecondition);

  const series::DataSeries source = MakeSeries(96, 7);
  const auto values = source.values();
  auto first_append = (*dataset)->Append(values.subspan(0, 48));
  ASSERT_TRUE(first_append.ok());
  EXPECT_EQ(first_append->points, 48u);
  EXPECT_EQ(first_append->subsequences, 41u);  // 48 - 8 + 1
  EXPECT_EQ(first_append->generation, 2u);
  EXPECT_EQ((*dataset)->generation(), 2u);
  ASSERT_TRUE((*dataset)->Append(values.subspan(48)).ok());
  EXPECT_EQ((*dataset)->generation(), 3u);
  EXPECT_EQ((*dataset)->size(), 96u);

  // The incrementally maintained profile matches batch STOMP.
  auto state = (*dataset)->StreamingProfileSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->generation, 3u);
  EXPECT_EQ(state->points, 96u);
  auto batch = mp::ComputeStomp(source, 8);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(state->profile.size(), batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_NEAR(state->profile.distances[i], batch->distances[i], 1e-7)
        << "row " << i;
  }
}

TEST(DatasetRegistryTest, StreamingSnapshotMaterializesPerGeneration) {
  DatasetRegistry registry;
  auto dataset = registry.CreateStreaming("stream", 4);
  ASSERT_TRUE(dataset.ok());
  const std::vector<double> first{1.0, 5.0, 2.0, 8.0, 1.0, 5.0, 2.0, 8.0};
  ASSERT_TRUE((*dataset)->Append(first).ok());

  auto snapshot_a = (*dataset)->Snapshot();
  ASSERT_TRUE(snapshot_a.ok());
  EXPECT_EQ((*snapshot_a)->series().size(), 8u);
  EXPECT_EQ((*snapshot_a)->generation(), 2u);
  // Unchanged generation reuses the cached snapshot (and its engine).
  EXPECT_EQ((*dataset)->Snapshot()->get(), snapshot_a->get());

  const std::vector<double> more{3.0, 4.0};
  ASSERT_TRUE((*dataset)->Append(more).ok());
  auto snapshot_b = (*dataset)->Snapshot();
  ASSERT_TRUE(snapshot_b.ok());
  EXPECT_NE(snapshot_b->get(), snapshot_a->get());
  EXPECT_EQ((*snapshot_b)->series().size(), 10u);
  // The old snapshot stays valid for requests still holding it.
  EXPECT_EQ((*snapshot_a)->series().size(), 8u);
}

TEST(DatasetRegistryTest, ReloadedNameGetsAFreshUid) {
  DatasetRegistry registry;
  auto first = registry.LoadSeries("walk", MakeSeries(64, 1));
  ASSERT_TRUE(first.ok());
  const std::uint64_t first_uid = (*first)->uid();
  ASSERT_TRUE(registry.Unload("walk").ok());
  auto second = registry.LoadSeries("walk", MakeSeries(64, 2));
  ASSERT_TRUE(second.ok());
  // Same name, same generation (1) — but a different identity, which is
  // what keeps result-cache keys from aliasing across a reload.
  EXPECT_EQ((*second)->generation(), (*first)->generation());
  EXPECT_NE((*second)->uid(), first_uid);
}

TEST(DatasetRegistryTest, ListReportsAllEntries) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.LoadSeries("b_static", MakeSeries(32)).ok());
  ASSERT_TRUE(registry.CreateStreaming("a_stream", 6).ok());
  const auto infos = registry.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "a_stream");
  EXPECT_TRUE(infos[0].streaming);
  EXPECT_EQ(infos[0].streaming_length, 6u);
  EXPECT_EQ(infos[1].name, "b_static");
  EXPECT_FALSE(infos[1].streaming);
  EXPECT_EQ(infos[1].points, 32u);
}

TEST(DatasetRegistryTest, WindowedStreamingEvictsAndStaysConsistent) {
  DatasetRegistry registry;
  auto dataset =
      registry.CreateStreaming("win", 8, /*exclusion_fraction=*/0.5,
                               /*max_points=*/64);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ((*dataset)->max_points(), 64u);

  const series::DataSeries source = MakeSeries(256, 9);
  const auto values = source.values();
  ASSERT_TRUE((*dataset)->Append(values.subspan(0, 100)).ok());
  auto appended = (*dataset)->Append(values.subspan(100));
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->points, 64u);
  EXPECT_EQ(appended->evicted, 192u);
  EXPECT_EQ(appended->window_start, 192u);
  EXPECT_EQ(appended->total_appended, 256u);
  EXPECT_EQ((*dataset)->size(), 64u);

  // Maintained profile == batch STOMP of the retained (last 64) raw values.
  auto state = (*dataset)->StreamingProfileSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->window_start, 192u);
  auto retained = series::DataSeries::Create(
      {values.end() - 64, values.end()});
  ASSERT_TRUE(retained.ok());
  auto batch = mp::ComputeStomp(*retained, 8);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(state->profile.size(), batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_NEAR(state->profile.distances[i], batch->distances[i], 1e-7)
        << "row " << i;
  }

  // Maintained top-k agrees with the batch oracle ranked by the shared
  // free functions.
  auto top = (*dataset)->StreamingTopKSnapshot(3, 3);
  ASSERT_TRUE(top.ok());
  const auto batch_motifs = mp::TopKMotifs(*batch, 3);
  ASSERT_EQ(top->motifs.size(), batch_motifs.size());
  for (std::size_t r = 0; r < batch_motifs.size(); ++r) {
    EXPECT_EQ(top->motifs[r].offset_a, batch_motifs[r].offset_a);
    EXPECT_EQ(top->motifs[r].offset_b, batch_motifs[r].offset_b);
  }
  const auto batch_discords = mp::TopKDiscords(*batch, 3);
  ASSERT_EQ(top->discords.size(), batch_discords.size());
  for (std::size_t r = 0; r < batch_discords.size(); ++r) {
    EXPECT_EQ(top->discords[r].offset, batch_discords[r].offset);
  }

  // Occupancy/footprint reporting.
  const Dataset::MemoryInfo memory = (*dataset)->Memory();
  EXPECT_EQ(memory.retained, 64u);
  EXPECT_EQ(memory.max_points, 64u);
  EXPECT_EQ(memory.evicted_total, 192u);
  EXPECT_EQ(memory.total_appended, 256u);
  EXPECT_GT(memory.memory_bytes, 0u);

  const auto infos = registry.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].max_points, 64u);
  EXPECT_EQ(infos[0].evicted, 192u);
  EXPECT_EQ(infos[0].total_appended, 256u);
  EXPECT_EQ(infos[0].points, 64u);
}

TEST(DatasetRegistryTest, WindowedSnapshotServesRetainedWindow) {
  DatasetRegistry registry;
  auto dataset =
      registry.CreateStreaming("win", 8, /*exclusion_fraction=*/0.5,
                               /*max_points=*/32);
  ASSERT_TRUE(dataset.ok());
  const series::DataSeries source = MakeSeries(80, 3);
  ASSERT_TRUE((*dataset)->Append(source.values()).ok());
  auto snapshot = (*dataset)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  // The materialized series is the retained window (anchor-shifted, which
  // z-normalized queries cannot observe).
  EXPECT_EQ((*snapshot)->series().size(), 32u);
}

TEST(DatasetRegistryTest, StreamingSnapshotAdoptsEngineCachesAcrossAppends) {
  // Unbounded streaming: consecutive snapshots are pure extensions, so the
  // new generation's engine inherits the previous one's chunk spectra
  // (observable as a pre-warmed cache before any query runs).
  DatasetRegistry registry;
  auto dataset = registry.CreateStreaming("grow", 16);
  ASSERT_TRUE(dataset.ok());
  const series::DataSeries source = MakeSeries(3000, 11);
  const auto values = source.values();
  ASSERT_TRUE((*dataset)->Append(values.subspan(0, 2500)).ok());

  auto first = (*dataset)->Snapshot();
  ASSERT_TRUE(first.ok());
  // Populate the first generation's chunk-spectra cache.
  ASSERT_TRUE((*first)
                  ->engine()
                  .ComputeRowProfile(0, 16, mass::ConvolutionBackend::kOverlapSave)
                  .ok());
  ASSERT_EQ((*first)->engine().ChunkSpectraCacheSizeForTesting(), 1u);

  ASSERT_TRUE((*dataset)->Append(values.subspan(2500)).ok());
  auto second = (*dataset)->Snapshot();
  ASSERT_TRUE(second.ok());
  ASSERT_NE(second->get(), first->get());
  // Adopted before any query touched the new engine.
  EXPECT_EQ((*second)->engine().ChunkSpectraCacheSizeForTesting(), 1u);
  // And the adopted state answers queries identically to a fresh compute.
  auto row = (*second)->engine().ComputeRowProfile(
      100, 16, mass::ConvolutionBackend::kOverlapSave);
  ASSERT_TRUE(row.ok());
  auto batch = mp::ComputeStomp((*second)->series(), 16);
  ASSERT_TRUE(batch.ok());
}

}  // namespace
}  // namespace valmod::service
